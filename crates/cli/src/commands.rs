//! Subcommand implementations.

use crate::args::Flags;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::path::Path;
use stfm_core::StfmConfig;
use stfm_cpu::{trace_io, Core, FileTrace};
use stfm_dram::DramConfig;
use stfm_mc::{MemorySystem, ThreadId, DEFAULT_SAMPLE_INTERVAL};
use stfm_serve::{expand_line, run_sweep, ResultCache, ServeConfig};
use stfm_sim::{
    run_all_jobs, AloneCache, Experiment, SchedulerKind, System, Table, ThreadMetrics,
    WorkloadMetrics,
};
use stfm_telemetry::{EpochConfig, EpochSampler, JsonLinesSink, Sink, TeeSink};
use stfm_workloads::{desktop, spec, Profile, SyntheticTrace};

/// Top-level usage text.
pub const USAGE: &str = "\
stfm — Stall-Time Fair Memory scheduling reproduction

USAGE:
  stfm run --workload <b1,b2,...> [--scheduler frfcfs|fcfs|cap|nfq|stfm|all]
           [--insts N] [--seed N] [--alpha X] [--weights w1,w2,...]
           [--banks N] [--row-kb N] [--jobs N] [--check] [--energy]
  stfm trace --workload <b1,b2,...> [--scheduler frfcfs|fcfs|cap|nfq|stfm]
           [--insts N] [--seed N] [--epoch N] [--sample N] [--out-dir DIR]
  stfm sweep <spec-file> [--jobs N] [--cache-dir DIR] [--quiet]
  stfm serve [--jobs N] [--cache-dir DIR] [--tcp ADDR] [--cell-timeout MS]
           [--retry-backoff MS] [--self-check N] [--fault-log FILE]
  stfm list
  stfm capture --benchmark <name> --ops N --out <file> [--seed N] [--cores N]
  stfm replay --traces <f1,f2,...> [--scheduler ...] [--insts N]
  stfm help

`sweep` expands a JSONL spec file (one experiment grid per line; see
DESIGN.md section 10) into cells, runs them across --jobs workers
(default: all cores), and streams one JSON result line per cell to
stdout in input order. Malformed lines print a one-line Err to stderr
with the offending line number; the rest of the file still runs. With
--cache-dir, completed cells persist and later runs replay them.

`serve` is the long-running form: it reads spec lines from stdin (or
accepts sequential connections with --tcp host:port), streams result
lines plus per-line `epoch` telemetry, answers {\"cmd\":\"ping\"|\"stats\"}
in stream order, and exits gracefully on {\"cmd\":\"shutdown\"} or EOF.
Cells are panic-isolated; --cell-timeout caps each cell's wall-clock
budget in milliseconds (one retry after --retry-backoff ms, default 25,
then a structured timeout error); --self-check N re-runs 1-in-N fresh
cells on the stepped oracle loop and demotes a diverging scheduler/mix
class to that loop for the session; --fault-log FILE mirrors detected
faults as telemetry JSONL. See DESIGN.md section 12.

`trace` runs one workload under one scheduler (default: stfm) with the
telemetry sink attached and writes <out-dir>/events.jsonl (full event
stream) and <out-dir>/epochs.csv (fixed-width time series: per-thread
estimated slowdowns, bandwidth, row-hit rate, bus utilization, queue
depth). --epoch sets the CSV row width and --sample the scheduler
snapshot spacing, both in DRAM cycles.

Benchmark names come from `stfm list` (the paper's Table 3 + Table 4).
";

fn lookup(name: &str) -> Result<Profile, String> {
    spec::by_name(name)
        .or_else(|| desktop::workload().into_iter().find(|p| p.name == name))
        .ok_or_else(|| format!("unknown benchmark '{name}' (see `stfm list`)"))
}

fn parse_scheduler(s: &str) -> Result<Vec<SchedulerKind>, String> {
    Ok(match s {
        "frfcfs" | "fr-fcfs" => vec![SchedulerKind::FrFcfs],
        "fcfs" => vec![SchedulerKind::Fcfs],
        "cap" | "frfcfs+cap" => vec![SchedulerKind::FrFcfsCap { cap: 4 }],
        "nfq" => vec![SchedulerKind::Nfq],
        "stfm" => vec![SchedulerKind::Stfm],
        "all" => SchedulerKind::all().to_vec(),
        other => return Err(format!("unknown scheduler '{other}'")),
    })
}

fn print_metrics(profile_names: &[String], results: &[WorkloadMetrics]) {
    let mut headers = vec!["scheduler".to_string()];
    headers.extend(profile_names.iter().cloned());
    headers.extend(["unfairness".into(), "w-speedup".into(), "hmean".into()]);
    let mut t = Table::new(headers);
    for m in results {
        let mut row = vec![m.scheduler.clone()];
        row.extend(m.threads.iter().map(|x| format!("{:.2}", x.mem_slowdown())));
        row.push(format!("{:.2}", m.unfairness()));
        row.push(format!("{:.2}", m.weighted_speedup()));
        row.push(format!("{:.3}", m.hmean_speedup()));
        t.row(row);
    }
    println!("{t}");
}

/// `stfm run`.
pub fn run(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let names = f.list("workload")?;
    let profiles: Vec<Profile> = names.iter().map(|n| lookup(n)).collect::<Result<_, _>>()?;
    let kinds = parse_scheduler(f.get("scheduler").unwrap_or("all"))?;
    let insts: u64 = f.num("insts", 100_000)?;
    let seed: u64 = f.num("seed", 1)?;

    let mut dram = DramConfig::for_cores(profiles.len() as u32);
    if let Some(banks) = f.get("banks") {
        dram = dram.with_banks(banks.parse().map_err(|_| "bad --banks")?);
    }
    if let Some(kb) = f.get("row-kb") {
        let kb: u32 = kb.parse().map_err(|_| "bad --row-kb")?;
        dram = dram.with_row_buffer_bytes_per_chip(kb * 1024);
    }

    let weights: Vec<u32> = match f.get("weights") {
        None => vec![],
        Some(w) => w
            .split(',')
            .map(|x| x.trim().parse().map_err(|_| format!("bad weight '{x}'")))
            .collect::<Result<_, _>>()?,
    };
    if !weights.is_empty() && weights.len() != profiles.len() {
        return Err(format!(
            "--weights needs {} entries, got {}",
            profiles.len(),
            weights.len()
        ));
    }

    let cache = AloneCache::new();
    let mut experiments = Vec::new();
    for kind in &kinds {
        let mut e = Experiment::new(profiles.clone())
            .scheduler(*kind)
            .dram_config(dram.clone())
            .instructions_per_thread(insts)
            .seed(seed)
            .timing_checker(f.has("check"));
        if let Some(alpha) = f.get("alpha") {
            e = e.alpha(alpha.parse().map_err(|_| "bad --alpha")?);
        }
        for (i, w) in weights.iter().enumerate() {
            e = match kind {
                SchedulerKind::Nfq => e.share(i as u32, *w),
                _ => e.weight(i as u32, *w),
            };
        }
        experiments.push(e);
    }
    let results = run_all_jobs(&experiments, &cache, jobs_flag(&f)?);
    if !f.has("quiet") {
        println!(
            "workload {:?}, {} instructions/thread, seed {}\n",
            names, insts, seed
        );
    }
    print_metrics(&names, &results);
    Ok(())
}

/// `stfm trace`: one traced run, dumping `events.jsonl` + `epochs.csv`.
pub fn trace(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let names = f.list("workload")?;
    let profiles: Vec<Profile> = names.iter().map(|n| lookup(n)).collect::<Result<_, _>>()?;
    let kinds = parse_scheduler(f.get("scheduler").unwrap_or("stfm"))?;
    let [kind] = kinds[..] else {
        return Err("trace takes a single scheduler, not 'all'".into());
    };
    let insts: u64 = f.num("insts", 100_000)?;
    let seed: u64 = f.num("seed", 1)?;
    let epoch_len: u64 = f.num("epoch", 10_000)?;
    let sample: u64 = f.num("sample", DEFAULT_SAMPLE_INTERVAL.get())?;
    let out_dir = f.get("out-dir").unwrap_or("trace-out");
    std::fs::create_dir_all(out_dir).map_err(|e| format!("{out_dir}: {e}"))?;

    let dram = DramConfig::for_cores(profiles.len() as u32);
    let events_path = Path::new(out_dir).join("events.jsonl");
    let epochs_path = Path::new(out_dir).join("epochs.csv");
    let events_file =
        File::create(&events_path).map_err(|e| format!("{}: {e}", events_path.display()))?;
    let sampler = EpochSampler::new(EpochConfig {
        epoch_len,
        threads: profiles.len(),
        cas_data_cycles: dram.timing.burst_cycles().get(),
        line_bytes: u64::from(dram.line_bytes),
    });
    let tee: TeeSink<JsonLinesSink<BufWriter<File>>, EpochSampler> =
        TeeSink::new(JsonLinesSink::new(BufWriter::new(events_file)), sampler);

    let experiment = Experiment::new(profiles)
        .scheduler(kind)
        .dram_config(dram)
        .instructions_per_thread(insts)
        .seed(seed)
        .sample_interval(sample);
    let mut run = experiment.run_traced(&AloneCache::new(), Box::new(tee));

    let Some(tee) = run
        .sink
        .as_any_mut()
        .downcast_mut::<TeeSink<JsonLinesSink<BufWriter<File>>, EpochSampler>>()
    else {
        return Err("internal error: run_traced returned a different sink type".into());
    };
    tee.first
        .flush()
        .map_err(|e| format!("events.jsonl: {e}"))?;
    let events = tee.first.lines_written();
    tee.second.finish(run.final_dram_cycle);
    let epochs_file =
        File::create(&epochs_path).map_err(|e| format!("{}: {e}", epochs_path.display()))?;
    tee.second
        .write_csv(BufWriter::new(epochs_file))
        .map_err(|e| format!("epochs.csv: {e}"))?;

    if !f.has("quiet") {
        println!(
            "workload {:?} under {}, {insts} instructions/thread, seed {seed}",
            names,
            kind.name()
        );
        println!(
            "{}: {events} events\n{}: {} epochs of {epoch_len} DRAM cycles",
            events_path.display(),
            epochs_path.display(),
            tee.second.rows().len()
        );
        print_metrics(&names, std::slice::from_ref(&run.metrics));
    }
    Ok(())
}

/// `stfm list`.
pub fn list(_args: &[String]) -> Result<(), String> {
    let mut t = Table::new([
        "benchmark",
        "suite",
        "cat",
        "MCPI",
        "MPKI",
        "RB hit",
        "traits",
    ]);
    let traits = |p: &Profile| {
        let mut v = Vec::new();
        if p.dependent_frac > 0.0 {
            v.push("pointer-chase");
        }
        if p.bank_skew.is_some() {
            v.push("bank-skewed");
        }
        if p.burst.is_some() {
            v.push("bursty");
        }
        if p.write_frac > 0.3 {
            v.push("write-heavy");
        }
        v.join(" ")
    };
    for p in spec::all() {
        t.row([
            p.name.to_string(),
            "SPEC2006".into(),
            p.category.index().to_string(),
            format!("{:.2}", p.targets.mcpi),
            format!("{:.2}", p.targets.mpki),
            format!("{:.1}%", p.targets.rb_hit * 100.0),
            traits(&p),
        ]);
    }
    for p in desktop::workload() {
        t.row([
            p.name.to_string(),
            "desktop".into(),
            p.category.index().to_string(),
            format!("{:.2}", p.targets.mcpi),
            format!("{:.2}", p.targets.mpki),
            format!("{:.1}%", p.targets.rb_hit * 100.0),
            traits(&p),
        ]);
    }
    println!("{t}");
    Ok(())
}

/// `stfm capture`.
pub fn capture(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let profile = lookup(f.require("benchmark")?)?;
    let out = f.require("out")?;
    let ops: usize = f.num("ops", 50_000usize)?;
    let seed: u64 = f.num("seed", 1)?;
    let cores: u32 = f.num("cores", 4u32)?;
    let dram = DramConfig::for_cores(cores);
    let mut trace = SyntheticTrace::new(profile, &dram, 0, seed);
    let records = trace_io::capture(&mut trace, ops);
    trace_io::write_trace(out, &records).map_err(|e| e.to_string())?;
    println!("wrote {} records to {out}", records.len());
    Ok(())
}

/// `stfm replay`: run trace files (one per core) through the simulator and
/// report per-thread shared-vs-alone metrics.
pub fn replay(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let files = f.list("traces")?;
    let kinds = parse_scheduler(f.get("scheduler").unwrap_or("stfm"))?;
    let insts: u64 = f.num("insts", 100_000)?;
    let dram = DramConfig::for_cores(files.len() as u32);

    let load = |path: &str| FileTrace::open(path).map_err(|e| format!("{path}: {e}"));

    // Alone baselines, one per file.
    let mut alone_stats = Vec::new();
    for path in &files {
        let trace = load(path)?;
        let mem = MemorySystem::new(
            dram.clone(),
            SchedulerKind::FrFcfs.build(dram.timing, &[], &[]),
        );
        let core = Core::new(ThreadId(0), Box::new(trace));
        let mut sys = System::new(vec![core], mem);
        let out = sys.run_with_warmup(insts / 4, insts, insts.saturating_mul(4_000));
        alone_stats.push(out.frozen[0]);
    }

    let names: Vec<String> = files.clone();
    let mut results = Vec::new();
    for kind in &kinds {
        let mem = MemorySystem::new(dram.clone(), kind.build(dram.timing, &[], &[]));
        let cores: Vec<Core> = files
            .iter()
            .enumerate()
            .map(|(i, path)| Ok(Core::new(ThreadId(i as u32), Box::new(load(path)?))))
            .collect::<Result<_, String>>()?;
        let mut sys = System::new(cores, mem);
        let out = sys.run_with_warmup(insts / 4, insts, insts.saturating_mul(4_000));
        results.push(WorkloadMetrics {
            scheduler: kind.name().to_string(),
            threads: files
                .iter()
                .zip(out.frozen.iter().zip(&alone_stats))
                .map(|(name, (shared, alone))| ThreadMetrics {
                    name: name.clone(),
                    shared: *shared,
                    alone: *alone,
                })
                .collect(),
        });
    }
    print_metrics(&names, &results);
    let _ = StfmConfig::default(); // keep the core crate in the public surface
    Ok(())
}

/// Resolves `--jobs` (0 or absent means "all cores").
fn jobs_flag(f: &Flags) -> Result<Option<usize>, String> {
    let n: usize = f.num("jobs", 0)?;
    Ok((n > 0).then_some(n))
}

/// Builds the alone-run and result caches, persistent when `--cache-dir`
/// is given (`DIR/alone` and `DIR/cells` respectively).
fn sweep_caches(f: &Flags) -> Result<(AloneCache, ResultCache), String> {
    match f.get("cache-dir") {
        Some(dir) => {
            let base = Path::new(dir);
            let alone = AloneCache::with_dir(base.join("alone"))
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
            let results = ResultCache::with_dir(base.join("cells"))
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
            Ok((alone, results))
        }
        None => Ok((AloneCache::new(), ResultCache::in_memory())),
    }
}

/// `stfm sweep`: expand a JSONL spec file and run every cell through the
/// shared work-stealing runner, streaming result lines to stdout.
pub fn sweep(args: &[String]) -> Result<(), String> {
    // The spec file is the one positional argument; accept it anywhere
    // relative to the flags.
    let mut flag_args: Vec<String> = Vec::new();
    let mut positionals: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a.starts_with("--") {
            flag_args.push(a.clone());
            if a != "--quiet" {
                if let Some(v) = it.next() {
                    flag_args.push(v.clone());
                }
            }
        } else {
            positionals.push(a);
        }
    }
    let [path] = positionals[..] else {
        return Err("usage: stfm sweep <spec-file> [--jobs N] [--cache-dir DIR] [--quiet]".into());
    };
    let f = Flags::parse(&flag_args)?;
    let (alone, results) = sweep_caches(&f)?;
    let quiet = f.has("quiet");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;

    // Expand up front; malformed lines report and are skipped, the rest
    // of the file still runs.
    let mut cells = Vec::new();
    let mut bad_lines = 0u64;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match expand_line(trimmed) {
            Ok(batch) => cells.extend(batch),
            Err(e) => {
                bad_lines += 1;
                eprintln!("{path}:{line_no}: Err: {e}");
            }
        }
    }

    let total = cells.len();
    let started = std::time::Instant::now();
    let mut out = io::stdout().lock();
    let mut emitted = 0usize;
    let mut write_failed = false;
    let summary = run_sweep(&cells, &alone, &results, jobs_flag(&f)?, |o| {
        if writeln!(out, "{}", o.line).is_err() {
            write_failed = true;
        }
        emitted += 1;
        if !quiet {
            let c = &cells[o.index];
            eprintln!(
                "[{emitted}/{total}] {} {} insts={} seed={} -> {} ({} ms)",
                c.scheduler.token(),
                c.mix.join("+"),
                c.insts,
                c.seed,
                if o.from_cache { "cache" } else { "run" },
                o.wall.as_millis()
            );
        }
    })?;
    out.flush().map_err(|e| format!("stdout: {e}"))?;
    if write_failed {
        return Err("stdout: write failed".into());
    }

    let wall = started.elapsed().as_secs_f64();
    if !quiet {
        let rate = if wall > 0.0 {
            summary.cells as f64 / wall
        } else {
            0.0
        };
        eprintln!(
            "{} cells ({} cached, {} simulated, {} bad lines) on {} workers in {:.2}s ({:.1} cells/s)",
            summary.cells,
            summary.cache_hits,
            summary.cells - summary.cache_hits,
            bad_lines,
            summary.workers,
            wall,
            rate
        );
    }
    Ok(())
}

/// Builds the fault-tolerance configuration for `stfm serve` from its
/// flags (`--cell-timeout`/`--retry-backoff` in milliseconds,
/// `--self-check` as a 1-in-N rate, `--fault-log` as a JSONL path).
fn serve_config(f: &Flags) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig::with_jobs(jobs_flag(f)?);
    let timeout_ms: u64 = f.num("cell-timeout", 0)?;
    if timeout_ms > 0 {
        cfg = cfg.cell_timeout(std::time::Duration::from_millis(timeout_ms));
    }
    let backoff_ms: u64 = f.num("retry-backoff", 25)?;
    cfg = cfg.retry_backoff(std::time::Duration::from_millis(backoff_ms));
    cfg = cfg.self_check(f.num("self-check", 0)?);
    if let Some(path) = f.get("fault-log") {
        cfg = cfg.fault_log(path);
    }
    Ok(cfg)
}

/// `stfm serve`: the long-running experiment service (stdin/stdout line
/// protocol, or sequential TCP connections with `--tcp`).
pub fn serve(args: &[String]) -> Result<(), String> {
    let f = Flags::parse(args)?;
    let (alone, results) = sweep_caches(&f)?;
    let cfg = serve_config(&f)?;
    if let Some(addr) = f.get("tcp") {
        eprintln!("stfm serve: listening on {addr}");
        stfm_serve::serve_tcp(addr, &alone, &results, &cfg).map_err(|e| format!("{addr}: {e}"))?;
        return Ok(());
    }
    // `StdinLock` is not `Send` (the reader runs on its own thread), so
    // wrap the handle in a `BufReader` instead of locking it.
    let stdin = BufReader::new(io::stdin());
    let stdout = io::stdout().lock();
    let totals = stfm_serve::serve(stdin, stdout, &alone, &results, &cfg)
        .map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "stfm serve: {} lines, {} cells ({} cached), {} errors, {} timeouts, {} panics{}",
        totals.lines,
        totals.cells,
        totals.cache_hits,
        totals.errors,
        totals.timeouts,
        totals.panics,
        if totals.disconnected {
            " (client disconnected)"
        } else {
            ""
        }
    );
    Ok(())
}
