//! `stfm` — command-line front end for the STFM reproduction.
//!
//! ```text
//! stfm run --workload mcf,libquantum,GemsFDTD,astar --scheduler stfm
//! stfm run --workload mcf,libquantum --scheduler all --insts 100000
//! stfm sweep experiments.jsonl --jobs 8 --cache-dir .stfm-cache
//! stfm serve --cache-dir .stfm-cache < spec.jsonl
//! stfm trace --workload mcf,libquantum --out-dir trace-out
//! stfm list
//! stfm capture --benchmark mcf --ops 50000 --out mcf.trace
//! stfm replay --traces a.trace,b.trace --scheduler stfm
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match argv.first().map(String::as_str) {
        // `cargo bench --workspace` invokes binaries with --bench.
        Some("--bench") => Ok(()),
        Some("run") => commands::run(&argv[1..]),
        Some("sweep") => commands::sweep(&argv[1..]),
        Some("serve") => commands::serve(&argv[1..]),
        Some("trace") => commands::trace(&argv[1..]),
        Some("list") => commands::list(&argv[1..]),
        Some("capture") => commands::capture(&argv[1..]),
        Some("replay") => commands::replay(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{}", commands::USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'; try `stfm help`")),
    }
    .map_or_else(
        |e| {
            eprintln!("error: {e}");
            1
        },
        |_| 0,
    );
    std::process::exit(code);
}
