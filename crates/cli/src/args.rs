//! Minimal flag parsing: `--key value` pairs and boolean `--flag`s.

use std::collections::HashMap;

/// Parsed `--key value` / `--flag` arguments.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["check", "energy", "quiet"];

impl Flags {
    /// Parses an argument list.
    ///
    /// # Errors
    ///
    /// Rejects non-flag tokens and value flags without a value.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut f = Flags::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            if SWITCHES.contains(&key) {
                f.switches.push(key.to_string());
            } else {
                let v = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                f.values.insert(key.to_string(), v.clone());
            }
        }
        Ok(f)
    }

    /// String value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Required string value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing --{key}"))
    }

    /// Parsed numeric value with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{key}: '{v}'")),
        }
    }

    /// Boolean switch.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Comma-separated list value.
    pub fn list(&self, key: &str) -> Result<Vec<String>, String> {
        Ok(self
            .require(key)?
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(&argv("--workload mcf,libquantum --insts 5000 --check")).unwrap();
        assert_eq!(f.get("workload"), Some("mcf,libquantum"));
        assert_eq!(f.num::<u64>("insts", 0).unwrap(), 5000);
        assert!(f.has("check"));
        assert!(!f.has("energy"));
        assert_eq!(f.list("workload").unwrap(), vec!["mcf", "libquantum"]);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Flags::parse(&argv("positional")).is_err());
        assert!(Flags::parse(&argv("--insts")).is_err());
        let f = Flags::parse(&argv("--insts abc")).unwrap();
        assert!(f.num::<u64>("insts", 0).is_err());
    }

    #[test]
    fn defaults_flow_through() {
        let f = Flags::parse(&[]).unwrap();
        assert_eq!(f.num::<u64>("insts", 42).unwrap(), 42);
        assert!(f.require("workload").is_err());
    }
}
