//! Telemetry end-to-end properties: sinks must observe without perturbing,
//! and the epoch sampler's time series must agree with the final metrics.

use stfm_repro::sim::{AloneCache, Experiment, SchedulerKind, WorkloadMetrics};
use stfm_repro::telemetry::{EpochConfig, EpochSampler, Event, RingSink};
use stfm_repro::workloads::spec;

const INSTS: u64 = 30_000;

fn experiment() -> Experiment {
    Experiment::new(vec![spec::mcf(), spec::libquantum()])
        .scheduler(SchedulerKind::Stfm)
        .instructions_per_thread(INSTS)
}

fn fingerprint(m: &WorkloadMetrics) -> Vec<u64> {
    // Bit-exact, not approximate: attaching a sink must not change a
    // single scheduling decision.
    let mut v = vec![
        m.unfairness().to_bits(),
        m.weighted_speedup().to_bits(),
        m.hmean_speedup().to_bits(),
    ];
    for t in &m.threads {
        v.push(t.mem_slowdown().to_bits());
        v.push(t.shared.cycles);
        v.push(t.shared.instructions);
        v.push(t.shared.mem_stall_cycles);
    }
    v
}

/// Attaching a recording sink must leave the simulation bit-identical to
/// an untraced run (the default NullSink).
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let cache = AloneCache::new();
    let untraced = experiment().run_with_cache(&cache);
    let traced = experiment().run_traced(&cache, Box::new(RingSink::new(4096)));
    assert_eq!(fingerprint(&untraced), fingerprint(&traced.metrics));

    // And the sink did actually observe the run.
    let mut sink = traced.sink;
    let ring = sink
        .as_any_mut()
        .downcast_mut::<RingSink>()
        .expect("sink comes back as given");
    assert!(ring.total_recorded() > 0, "ring sink saw no events");
    assert!(ring
        .events()
        .any(|e| matches!(e, Event::RequestServiced { .. })));
}

/// The epoch time series must be gap-free and its per-thread slowdown
/// estimates must land near the final measured memory slowdowns.
#[test]
fn epoch_slowdowns_track_final_metrics() {
    let cache = AloneCache::new();
    let sampler = EpochSampler::new(EpochConfig {
        epoch_len: 5_000,
        threads: 2,
        ..EpochConfig::default()
    });
    let mut run = experiment()
        .sample_interval(500)
        .run_traced(&cache, Box::new(sampler));
    let sampler = run
        .sink
        .as_any_mut()
        .downcast_mut::<EpochSampler>()
        .expect("sink comes back as given");
    sampler.finish(run.final_dram_cycle);

    let rows = sampler.rows();
    assert!(rows.len() >= 2, "run too short for a time series");
    for (i, pair) in rows.windows(2).enumerate() {
        assert_eq!(pair[0].end, pair[1].start, "gap after epoch {i}");
    }
    assert!(rows.iter().any(|r| r.serviced() > 0));

    // STFM's runtime estimates vs the offline shared/alone measurement:
    // different estimators, same quantity — they must agree loosely.
    let last = rows.last().unwrap();
    for (t, measured) in run
        .metrics
        .threads
        .iter()
        .map(|t| t.mem_slowdown())
        .enumerate()
    {
        let estimated = last.slowdowns[t].expect("STFM reports every thread");
        assert!(
            (estimated - measured).abs() < 0.75,
            "thread {t}: estimated {estimated:.2} vs measured {measured:.2}"
        );
    }
}
