//! End-to-end fairness properties across crates: the paper's qualitative
//! claims, validated on the full simulator.

use stfm_repro::sim::{AloneCache, Experiment, SchedulerKind};
use stfm_repro::workloads::{mix, spec};

const INSTS: u64 = 40_000;

fn unfairness(kind: SchedulerKind, profiles: Vec<stfm_repro::workloads::Profile>) -> f64 {
    Experiment::new(profiles)
        .scheduler(kind)
        .instructions_per_thread(INSTS)
        .run()
        .unfairness()
}

/// The paper's central claim, on its own adversarial scenario: pairing a
/// high-row-locality streaming thread with a pointer chaser under FR-FCFS
/// produces large unfairness, and STFM reduces it substantially.
#[test]
fn stfm_reduces_unfairness_on_streaming_vs_chasing() {
    let mixload = || vec![spec::mcf(), spec::libquantum()];
    let frfcfs = unfairness(SchedulerKind::FrFcfs, mixload());
    let stfm = unfairness(SchedulerKind::Stfm, mixload());
    assert!(
        frfcfs > 1.5,
        "FR-FCFS should be visibly unfair here, got {frfcfs:.2}"
    );
    assert!(
        stfm < frfcfs * 0.75,
        "STFM must cut unfairness substantially: {frfcfs:.2} -> {stfm:.2}"
    );
}

/// Case study I (Figure 6): STFM improves on FR-FCFS for the intensive mix.
#[test]
fn stfm_beats_frfcfs_on_intensive_case_study() {
    let frfcfs = unfairness(SchedulerKind::FrFcfs, mix::case_study_intensive());
    let stfm = unfairness(SchedulerKind::Stfm, mix::case_study_intensive());
    assert!(stfm < frfcfs, "STFM {stfm:.2} vs FR-FCFS {frfcfs:.2}");
}

/// FR-FCFS's thread-unfairness mechanism (Section 2.5): the streaming
/// thread barely slows down while the row-conflict-heavy thread starves.
#[test]
fn frfcfs_favors_row_buffer_locality() {
    let m = Experiment::new(vec![spec::libquantum(), spec::gems_fdtd()])
        .scheduler(SchedulerKind::FrFcfs)
        .instructions_per_thread(INSTS)
        .run();
    let libq = m.threads[0].mem_slowdown();
    let gems = m.threads[1].mem_slowdown();
    assert!(
        gems > libq,
        "GemsFDTD ({gems:.2}) must suffer more than libquantum ({libq:.2}) under FR-FCFS"
    );
}

/// The NFQ idleness and access-balance problems (Section 4, Figures 3 and
/// 10): on the paper's 8-core non-intensive workload, NFQ penalizes the
/// continuously active mcf harder than FR-FCFS does (idleness problem),
/// and the bank-skewed dealII suffers its worst slowdown under NFQ
/// (access-balance problem).
#[test]
fn nfq_idleness_and_access_balance_problems() {
    let cache = AloneCache::new();
    // The access-balance effect depends on which rows/banks the random
    // traces land on; this seed instantiates the workload so both of the
    // paper's qualitative problems are visible at this short run length.
    let run = |kind| {
        Experiment::new(mix::fig10_eight_core())
            .scheduler(kind)
            .instructions_per_thread(30_000)
            .seed(3)
            .run_with_cache(&cache)
    };
    let frfcfs = run(SchedulerKind::FrFcfs);
    let nfq = run(SchedulerKind::Nfq);
    // Idleness: continuous mcf (thread 0) is worse off under NFQ.
    assert!(
        nfq.threads[0].mem_slowdown() > frfcfs.threads[0].mem_slowdown(),
        "mcf: NFQ {:.2} vs FR-FCFS {:.2}",
        nfq.threads[0].mem_slowdown(),
        frfcfs.threads[0].mem_slowdown()
    );
    // Access balance: dealII (thread 5, 2-bank footprint) is the
    // worst-slowed thread of the whole workload under NFQ — its deadlines
    // accrue fastest in exactly the banks it needs.
    assert!(
        nfq.threads[5].mem_slowdown() >= nfq.max_slowdown() - 1e-9,
        "dealII: NFQ {:.2}, workload max {:.2}",
        nfq.threads[5].mem_slowdown(),
        nfq.max_slowdown()
    );
}

/// Thread weights (Section 3.3 / Figure 14): a weight-16 thread must see a
/// (much) smaller slowdown than it does with weight 1.
#[test]
fn stfm_weights_prioritize_important_threads() {
    let cache = AloneCache::new();
    let base = Experiment::new(mix::fig14_weights())
        .scheduler(SchedulerKind::Stfm)
        .instructions_per_thread(INSTS)
        .run_with_cache(&cache);
    let weighted = Experiment::new(mix::fig14_weights())
        .scheduler(SchedulerKind::Stfm)
        .weight(1, 16) // cactusADM
        .instructions_per_thread(INSTS)
        .run_with_cache(&cache);
    assert!(
        weighted.threads[1].mem_slowdown() < base.threads[1].mem_slowdown(),
        "weight 16 must reduce cactusADM's slowdown: {:.2} -> {:.2}",
        base.threads[1].mem_slowdown(),
        weighted.threads[1].mem_slowdown()
    );
}

/// NFQ bandwidth shares have the analogous effect.
#[test]
fn nfq_shares_prioritize_important_threads() {
    let cache = AloneCache::new();
    let base = Experiment::new(mix::fig14_weights())
        .scheduler(SchedulerKind::Nfq)
        .instructions_per_thread(INSTS)
        .run_with_cache(&cache);
    let shared = Experiment::new(mix::fig14_weights())
        .scheduler(SchedulerKind::Nfq)
        .share(1, 16)
        .instructions_per_thread(INSTS)
        .run_with_cache(&cache);
    assert!(
        shared.threads[1].mem_slowdown() <= base.threads[1].mem_slowdown(),
        "share 16 must not hurt cactusADM: {:.2} -> {:.2}",
        base.threads[1].mem_slowdown(),
        shared.threads[1].mem_slowdown()
    );
}

/// A very large α disables fairness enforcement: STFM must behave like
/// FR-FCFS (Section 3.3 / Figure 15).
#[test]
fn huge_alpha_recovers_frfcfs_behavior() {
    let cache = AloneCache::new();
    let frfcfs = Experiment::new(mix::case_study_intensive())
        .scheduler(SchedulerKind::FrFcfs)
        .instructions_per_thread(INSTS)
        .run_with_cache(&cache);
    let stfm = Experiment::new(mix::case_study_intensive())
        .scheduler(SchedulerKind::Stfm)
        .alpha(1e6)
        .instructions_per_thread(INSTS)
        .run_with_cache(&cache);
    // Scheduling decisions are identical, so the metrics must match to
    // within numeric noise.
    assert!((stfm.unfairness() - frfcfs.unfairness()).abs() < 0.05);
    assert!((stfm.weighted_speedup() - frfcfs.weighted_speedup()).abs() < 0.02);
}
