//! Cross-crate integrity checks: timing legality under every scheduler,
//! request conservation, determinism, and metric plumbing.

use stfm_repro::cpu::Core;
use stfm_repro::dram::{ClockRatio, DramConfig, DramCycle};
use stfm_repro::mc::{MemorySystem, ThreadId};
use stfm_repro::sim::{AloneCache, Experiment, SchedulerKind, System};
use stfm_repro::workloads::{mix, spec, SyntheticTrace};

/// Every scheduler must produce DDR2-legal command streams end to end.
/// The independent TimingChecker audits every issued command.
#[test]
fn all_schedulers_are_timing_clean() {
    for kind in SchedulerKind::all() {
        let _ = Experiment::new(mix::case_study_mixed())
            .scheduler(kind)
            .instructions_per_thread(8_000)
            .timing_checker(true)
            .run();
        // run() panics internally on a violation; reaching here is a pass.
    }
}

/// ... including with refresh disabled and on swept DRAM geometries.
#[test]
fn timing_clean_across_geometries() {
    for banks in [4u32, 16] {
        for row_kb in [1u32, 4] {
            let cfg = DramConfig::for_cores(4)
                .with_banks(banks)
                .with_row_buffer_bytes_per_chip(row_kb * 1024);
            let _ = Experiment::new(mix::case_study_non_intensive())
                .scheduler(SchedulerKind::Stfm)
                .dram_config(cfg)
                .instructions_per_thread(5_000)
                .timing_checker(true)
                .run();
        }
    }
}

/// Whole-experiment determinism: identical runs produce identical metrics,
/// and different seeds produce different (but valid) metrics.
#[test]
fn experiments_are_deterministic_per_seed() {
    let exp = |seed: u64| {
        Experiment::new(mix::case_study_mixed())
            .scheduler(SchedulerKind::Stfm)
            .instructions_per_thread(10_000)
            .seed(seed)
            .run()
    };
    let (a, b, c) = (exp(7), exp(7), exp(8));
    assert_eq!(a.unfairness(), b.unfairness());
    assert_eq!(a.weighted_speedup(), b.weighted_speedup());
    for (x, y) in a.threads.iter().zip(&b.threads) {
        assert_eq!(x.shared, y.shared);
    }
    assert_ne!(a.unfairness(), c.unfairness(), "seed must matter");
}

/// Request conservation on the raw controller: every accepted request
/// completes exactly once, under an adversarial mixed workload.
#[test]
fn memory_system_conserves_requests() {
    use stfm_repro::dram::PhysAddr;
    use stfm_repro::mc::AccessKind;

    for kind in SchedulerKind::all() {
        let cfg = DramConfig::for_cores(4);
        let mut mem = MemorySystem::new(cfg.clone(), kind.build(cfg.timing, &[], &[]));
        mem.enable_timing_checker();
        let mut accepted = 0u64;
        let mut completed = 0u64;
        let mut now = DramCycle::ZERO;
        for i in 0..3_000u64 {
            let thread = ThreadId((i % 4) as u32);
            let addr = PhysAddr((i * 64).wrapping_mul(2654435761) % (1 << 30));
            let kind_a = if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if mem
                .try_enqueue(thread, kind_a, addr, ClockRatio::PAPER.dram_to_cpu(now), 0)
                .is_some()
            {
                accepted += 1;
            }
            mem.tick(now);
            completed += mem.drain_completions().len() as u64;
            now += 1;
        }
        let mut guard = 0;
        while mem.outstanding() > 0 {
            mem.tick(now);
            completed += mem.drain_completions().len() as u64;
            now += 1;
            guard += 1;
            assert!(guard < 2_000_000, "{}: wedged", kind.name());
        }
        assert_eq!(
            accepted,
            completed,
            "{}: lost/duplicated requests",
            kind.name()
        );
        mem.assert_timing_clean();
    }
}

/// A full multi-core system drains: no deadlock under back-pressure with
/// writeback-heavy traffic.
#[test]
fn writeback_heavy_system_makes_progress() {
    let profiles = [spec::lbm(), spec::lbm(), spec::milc(), spec::lbm()];
    let dram = DramConfig::for_cores(4);
    let mem = MemorySystem::new(
        dram.clone(),
        SchedulerKind::Stfm.build(dram.timing, &[], &[]),
    );
    let cores: Vec<Core> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let tr = SyntheticTrace::new(p.clone(), &dram, i as u32, 3);
            Core::new(ThreadId(i as u32), Box::new(tr))
        })
        .collect();
    let mut sys = System::new(cores, mem);
    let out = sys.run(15_000, 500_000_000);
    assert!(!out.truncated, "system wedged under writeback pressure");
    for f in &out.frozen {
        assert!(f.instructions >= 15_000);
    }
}

/// The alone-run cache returns bit-identical baselines, and sharing it
/// across schedulers does not perturb results.
#[test]
fn alone_cache_consistency() {
    let cache = AloneCache::new();
    let with_cache = Experiment::new(vec![spec::omnetpp(), spec::libquantum()])
        .scheduler(SchedulerKind::Nfq)
        .instructions_per_thread(8_000)
        .run_with_cache(&cache);
    let without = Experiment::new(vec![spec::omnetpp(), spec::libquantum()])
        .scheduler(SchedulerKind::Nfq)
        .instructions_per_thread(8_000)
        .run();
    assert_eq!(with_cache.unfairness(), without.unfairness());
    assert_eq!(cache.len(), 2);
}

/// Channel scaling: the 8-core configuration uses 2 channels and must
/// spread traffic across both.
#[test]
fn multi_channel_systems_use_all_channels() {
    let m = Experiment::new(mix::fig10_eight_core())
        .scheduler(SchedulerKind::FrFcfs)
        .instructions_per_thread(5_000)
        .run();
    // All threads made progress, which requires both channels to flow.
    // (The measurement window is instruction-budget wide up to a few
    // instructions of snapshot quantization.)
    for t in &m.threads {
        assert!(t.shared.instructions >= 4_900, "{} starved", t.name);
    }
}

/// Chaos monkey: a policy that makes arbitrary (but deterministic)
/// scheduling choices every cycle. Whatever it picks, the controller must
/// emit only DDR2-legal commands, never lose a request, and never wedge.
#[test]
fn chaos_policy_cannot_break_the_controller() {
    use stfm_repro::dram::PhysAddr;
    use stfm_repro::mc::test_util::ChaosPolicy;
    use stfm_repro::mc::AccessKind;

    for seed in [1u64, 7, 42] {
        let cfg = DramConfig::for_cores(4);
        let mut mem = MemorySystem::new(cfg.clone(), Box::new(ChaosPolicy { seed }));
        mem.enable_timing_checker();
        let mut accepted = 0u64;
        let mut completed = 0u64;
        let mut now = DramCycle::ZERO;
        for i in 0..4_000u64 {
            let addr = PhysAddr((i.wrapping_mul(2654435761 + seed) * 64) % (1 << 31));
            let kind = if i % 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if mem
                .try_enqueue(
                    ThreadId((i % 4) as u32),
                    kind,
                    addr,
                    ClockRatio::PAPER.dram_to_cpu(now),
                    0,
                )
                .is_some()
            {
                accepted += 1;
            }
            mem.tick(now);
            completed += mem.drain_completions().len() as u64;
            now += 1;
        }
        let mut guard = 0;
        while mem.outstanding() > 0 {
            mem.tick(now);
            completed += mem.drain_completions().len() as u64;
            now += 1;
            guard += 1;
            assert!(guard < 3_000_000, "chaos seed {seed} wedged the controller");
        }
        assert_eq!(accepted, completed, "chaos seed {seed} lost requests");
        mem.assert_timing_clean();
    }
}
