//! A dependency-free Rust lexer for the `tidy` lint engine.
//!
//! Turns source text into a flat token stream with comments and the
//! *contents* of string/char literals stripped (a `Str`/`Char` token
//! marks where each literal stood), while every token keeps the 1-based
//! line it started on. Line-level rules (module docs, placeholder
//! markers, the allowlist) still read the raw source; everything
//! token-shaped matches on this stream, so a line break or an
//! interleaved comment can no longer split a pattern the way it could
//! under the old regex-per-line harness.
//!
//! The lexer is deliberately approximate where precision does not
//! matter for linting: multi-character punctuation is emitted as
//! single-character `Punct` tokens (`::` is two `:`), and numeric
//! suffixes stay glued to their literal. It is exact where the lints
//! need it to be: nested block comments, raw strings with arbitrary
//! `#` fences, byte/raw-byte strings, char literals vs. lifetime
//! ticks, and raw identifiers.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `as`, `HashMap`, `r#type`, ...).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`), tick included.
    Lifetime,
    /// Integer or float literal, suffix included (`1_000u64`, `1e-9`*).
    ///
    /// *Float exponents with a sign are consumed as part of the number,
    /// so `1e-9` is one token and its `-` can never masquerade as a
    /// binary operator to a token-pattern rule.
    Number,
    /// A string literal (`"..."`, `r#"..."#`, `b"..."`); contents
    /// stripped.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`); contents stripped.
    Char,
    /// A single punctuation character (`.`, `:`, `[`, `{`, `+`, ...).
    Punct,
}

/// One lexed token: kind, text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The lexeme text. Empty for `Str`/`Char` (contents are stripped
    /// so literal bodies can never fool a token-pattern rule).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token {
    /// True if the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True if the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// True for bytes that may start an identifier.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that may continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// and comments simply run to end-of-file, which is good enough for a
/// linter (rustc rejects such files anyway).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'"' => self.string(),
                b'\'' => self.tick(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    self.push(TokenKind::Punct, (c as char).to_string(), self.line);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    /// Advances one byte, keeping the line counter honest.
    fn bump(&mut self) {
        if self.b[self.i] == b'\n' {
            self.line += 1;
        }
        self.i += 1;
    }

    fn line_comment(&mut self) {
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0u32;
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'` and
    /// raw identifiers `r#name`. Returns false if the current position
    /// is a plain identifier starting with `r`/`b` (caller lexes it).
    fn raw_or_byte_literal(&mut self) -> bool {
        let start = self.i;
        let first = self.b[self.i];
        let mut j = self.i + 1;
        if first == b'b' && self.b.get(j) == Some(&b'r') {
            j += 1;
        }
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        match self.b.get(j) {
            Some(&b'"') => {
                // (Raw/byte) string: skip to the closing quote + fence.
                let line = self.line;
                self.i = j + 1;
                let raw = first == b'r' || self.b.get(start + 1) == Some(&b'r');
                loop {
                    if self.i >= self.b.len() {
                        break;
                    }
                    let c = self.b[self.i];
                    if !raw && c == b'\\' {
                        self.i += 2.min(self.b.len() - self.i);
                        continue;
                    }
                    if c == b'"' {
                        let mut h = 0;
                        while h < hashes && self.b.get(self.i + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            self.i += 1 + hashes;
                            break;
                        }
                    }
                    self.bump();
                }
                self.push(TokenKind::Str, String::new(), line);
                true
            }
            _ if hashes > 0
                && first == b'r'
                && self.b.get(j).copied().is_some_and(is_ident_start) =>
            {
                // Raw identifier r#name: token text is the bare name.
                let line = self.line;
                let name_start = j;
                let mut k = j;
                while self.b.get(k).copied().is_some_and(is_ident_continue) {
                    k += 1;
                }
                let text = String::from_utf8_lossy(&self.b[name_start..k]).into_owned();
                self.i = k;
                self.push(TokenKind::Ident, text, line);
                true
            }
            Some(&b'\'') if first == b'b' && hashes == 0 => {
                // Byte char b'x': reuse the tick logic from the quote.
                self.i = j;
                self.tick();
                true
            }
            _ => false,
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2.min(self.b.len() - self.i),
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.bump(),
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    /// A `'`: either a char literal (`'x'`, `'\n'`) or a lifetime tick
    /// (`'a`, `'static`). A literal closes with `'` within a couple of
    /// characters or starts with an escape; a lifetime is a tick
    /// followed by an identifier with no closing quote.
    fn tick(&mut self) {
        let line = self.line;
        if self.peek(1) == Some(b'\\') {
            // Escaped char literal: consume the escaped character (it
            // may itself be a quote, as in '\''), then scan to the
            // closing quote (covers longer escapes like '\u{7F}').
            self.i += 2; // tick + backslash
            if self.i < self.b.len() {
                self.bump();
            }
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.bump();
            }
            self.i = (self.i + 1).min(self.b.len());
            self.push(TokenKind::Char, String::new(), line);
            return;
        }
        if self
            .peek(1)
            .is_some_and(|c| is_ident_start(c) || c.is_ascii_digit())
            && self.peek(2) != Some(b'\'')
        {
            // Lifetime: tick + ident run, no closing quote.
            let start = self.i;
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.push(TokenKind::Lifetime, text, line);
            return;
        }
        // Char literal 'x' (or a stray tick; consume defensively).
        self.i += 1;
        if self.i < self.b.len() && self.b[self.i] != b'\'' {
            self.bump();
        }
        if self.i < self.b.len() && self.b[self.i] == b'\'' {
            self.i += 1;
        }
        self.push(TokenKind::Char, String::new(), line);
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        // Integer part, hex/octal/binary prefixes included.
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            // An exponent sign belongs to the literal: 1e-9, 2E+10.
            if matches!(self.b[self.i], b'e' | b'E')
                && !self.b[start..self.i].starts_with(b"0x")
                && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                && self.peek(2).is_some_and(|c| c.is_ascii_digit())
            {
                self.i += 2;
                continue;
            }
            self.i += 1;
        }
        // Fractional part: a dot followed by a digit (not `..` / method).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                if matches!(self.b[self.i], b'e' | b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())
                {
                    self.i += 2;
                    continue;
                }
                self.i += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokenKind::Number, text, line);
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokenKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_are_stripped_but_marked() {
        let toks = lex("let s = \"dbg!( .unwrap() as DramCycle\";");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert_eq!(idents("let s = \"HashMap\";"), ["let", "s"]);
    }

    #[test]
    fn raw_strings_with_fences_and_byte_strings() {
        let toks = lex(r###"let s = r#"quote " inside"#; let b = b"bytes";"###);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Str).count(), 2);
        assert_eq!(
            idents(r###"let s = r#"quote " inside"#; let t = after;"###),
            ["let", "s", "let", "t", "after"]
        );
        // Nested fence count must match exactly.
        let toks = lex(r####"r##"inner "# still inside"## outside"####);
        assert!(toks.iter().any(|t| t.is_ident("outside")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still a comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
    }

    #[test]
    fn lifetime_ticks_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lifetimes[0].text, "'a");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
        // Escaped and quoted chars.
        let toks = lex(r"let c = '\n'; let q = '\''; let s = 'static");
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Char).count(), 2);
        assert!(toks.iter().any(|t| t.text == "'static"));
    }

    #[test]
    fn float_exponents_do_not_leak_sign_puncts() {
        let toks = lex("x.max(1e-9) + y");
        let plus_minus: Vec<_> = toks
            .iter()
            .filter(|t| t.is_punct('+') || t.is_punct('-'))
            .collect();
        assert_eq!(plus_minus.len(), 1, "only the real binary +: {toks:?}");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "1e-9"));
    }

    #[test]
    fn numbers_with_separators_and_suffixes() {
        let toks = lex("1_000u64 0xFF_u8 2.5e3 0b1010");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1_000u64", "0xFF_u8", "2.5e3", "0b1010"]);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn line_numbers_survive_every_multiline_construct() {
        let src = "first\n\"str\nspanning\"\n/* c\nomment */ 'x' fourth\nr#\"raw\nstring\"# last\n";
        let toks = lex(src);
        let find = |name: &str| toks.iter().find(|t| t.is_ident(name)).map(|t| t.line);
        assert_eq!(find("first"), Some(1));
        assert_eq!(find("fourth"), Some(5));
        assert_eq!(find("last"), Some(7));
        // The literals report the line they *start* on.
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::Str)
                .map(|t| t.line)
                .collect::<Vec<_>>(),
            [2, 6]
        );
    }

    #[test]
    fn seeded_roundtrip_respans_to_original_lines() {
        // Deterministic generator: assemble a file from a pool of
        // snippets, tracking on which line each marker identifier must
        // land, then assert the lexer respans every marker exactly.
        let mut state = 0x9E37_79B9_7F4A_7C15u64; // fixed seed
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            state
        };
        let fillers = [
            "let x = \"multi\nline\nstring\";",
            "/* block\ncomment */",
            "// line comment with 'tick and \"quote\n",
            "let c = '\\n';",
            "fn f<'a>(v: &'a [u8]) {}\n",
            "let r = r#\"raw \" body\nwith newline\"#;",
            "let n = 1e-9;\n",
        ];
        for _ in 0..50 {
            let mut src = String::new();
            let mut expected: Vec<(String, u32)> = Vec::new();
            let mut line = 1u32;
            for k in 0..12 {
                let f = fillers[(next() % fillers.len() as u64) as usize];
                src.push_str(f);
                line += f.matches('\n').count() as u32;
                if !f.ends_with('\n') {
                    src.push('\n');
                    line += 1;
                }
                let marker = format!("marker_{k}");
                src.push_str(&format!("let {marker} = {k};\n"));
                expected.push((marker, line));
                line += 1;
            }
            let toks = lex(&src);
            for (marker, want) in &expected {
                let got = toks.iter().find(|t| t.is_ident(marker)).map(|t| t.line);
                assert_eq!(got, Some(*want), "marker {marker} in:\n{src}");
            }
        }
    }
}
