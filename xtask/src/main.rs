//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task so far is `tidy`, a dependency-free static-analysis
//! harness that enforces the repository's source hygiene rules:
//!
//! 1. **No `as`-casts involving the cycle-domain newtypes** (`DramCycle`,
//!    `CpuCycle`, `DramDelta`, `CpuDelta`). Conversions must go through
//!    `stfm_cycles::ClockRatio` or the explicit `new()`/`get()` accessors,
//!    so every clock-domain crossing is visible and auditable.
//! 2. **No `.unwrap()` / `.expect(...)` outside test code** (`#[cfg(test)]`
//!    / `#[test]` items, `tests/` directories). Vetted exceptions live in
//!    `xtask/tidy.allow`, one `path: trimmed-line` entry per line; stale
//!    entries are themselves an error so the list can only shrink.
//! 3. **Module docs**: every `.rs` file under a `src/` or `tests/`
//!    directory must open with a `//!` doc comment.
//! 4. **No debug/placeholder markers**: `dbg!(` in code, or the
//!    to-do/fix-me markers anywhere (including comments).
//! 5. **Crate-root lints**: every `src/lib.rs` and `src/main.rs` must
//!    carry `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//!
//! The lints are token/line level on purpose — no `syn`, no external
//! dependencies — so `cargo xtask tidy` works on a bare offline toolchain.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The cycle-domain newtypes whose `as`-casts are banned (rule 1).
const CYCLE_TYPES: [&str; 4] = ["DramCycle", "CpuCycle", "DramDelta", "CpuDelta"];

/// Placeholder markers banned anywhere in the tree (rule 4). Assembled at
/// compile time from halves so this file does not flag itself.
const PLACEHOLDER_MARKERS: [&str; 2] = [concat!("TO", "DO"), concat!("FIX", "ME")];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Finding {
    /// Path relative to the repository root, `/`-separated.
    path: String,
    /// 1-based line number (0 for whole-file findings).
    line: usize,
    /// Short rule identifier.
    rule: &'static str,
    /// Trimmed offending line, or a description for whole-file findings.
    text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.text
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tidy") => tidy(),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: tidy");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  tidy    run the static-analysis harness"
            );
            ExitCode::FAILURE
        }
    }
}

/// Runs every lint over the workspace and reports findings.
fn tidy() -> ExitCode {
    let root = match repo_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: cannot locate the workspace root");
            return ExitCode::FAILURE;
        }
    };
    let allow_path = root.join("xtask").join("tidy.allow");
    let allow_src = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allowlist = parse_allowlist(&allow_src);

    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut used = vec![false; allowlist.len()];
    for path in &files {
        let rel = relative_path(&root, path);
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding {
                    path: rel,
                    line: 0,
                    rule: "io",
                    text: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        findings.extend(check_file(&rel, &src, &allowlist, &mut used));
    }
    // A stale allowlist entry is an error: the list may only shrink.
    for (entry, used) in allowlist.iter().zip(&used) {
        if !used {
            findings.push(Finding {
                path: "xtask/tidy.allow".into(),
                line: entry.line,
                rule: "stale-allow",
                text: format!("unused allowlist entry: {}: {}", entry.path, entry.needle),
            });
        }
    }

    if findings.is_empty() {
        println!("tidy: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "tidy: {} finding(s) in {} files scanned",
            findings.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// The repository root: the parent of this crate's manifest directory.
fn repo_root() -> Option<PathBuf> {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
}

/// `path` relative to `root`, `/`-separated.
fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` files, skipping build output, VCS state, and
/// the lint fixtures (which are deliberately dirty).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && relative_path(root, &path).starts_with("xtask/") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// One vetted `unwrap`/`expect` site.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AllowEntry {
    /// 1-based line in `tidy.allow` (for stale-entry reports).
    line: usize,
    /// Repo-relative `/`-separated path.
    path: String,
    /// Trimmed content the offending line must equal.
    needle: String,
}

/// Parses `tidy.allow`: `path: trimmed line content`, `#` comments.
fn parse_allowlist(src: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((path, needle)) = line.split_once(": ") {
            out.push(AllowEntry {
                line: i + 1,
                path: path.trim().to_string(),
                needle: needle.trim().to_string(),
            });
        }
    }
    out
}

/// Runs all per-file lints.
fn check_file(rel: &str, src: &str, allowlist: &[AllowEntry], used: &mut [bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let code = code_only(src);
    let in_tests_dir = rel.split('/').any(|c| c == "tests");
    let test_lines = test_context_lines(&code);
    let raw_lines: Vec<&str> = src.lines().collect();

    // Rule 3: module doc. Files under a src/ directory, and integration
    // tests under tests/ — a test file's opening doc is its statement of
    // what property it proves.
    if (rel.split('/').any(|c| c == "src") || in_tests_dir) && !has_module_doc(src) {
        findings.push(Finding {
            path: rel.to_string(),
            line: 1,
            rule: "module-doc",
            text: "file does not open with a `//!` module doc comment".into(),
        });
    }

    // Rule 5: crate-root lint attributes.
    if is_crate_root(rel) {
        for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !code.lines().any(|l| l.trim() == attr) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: 1,
                    rule: "crate-root-lints",
                    text: format!("crate root is missing `{attr}`"),
                });
            }
        }
    }

    for (i, code_line) in code.lines().enumerate() {
        let lineno = i + 1;
        let raw = raw_lines.get(i).copied().unwrap_or("");
        let in_test = in_tests_dir || test_lines.get(i).copied().unwrap_or(false);

        // Rule 1: `as`-casts to a cycle-domain newtype.
        if let Some(ty) = cycle_cast(code_line) {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "cycle-cast",
                text: format!("`as {ty}` cast; use ClockRatio / new() / get() instead"),
            });
        }

        // Rule 2: unwrap/expect outside test code.
        if !in_test && (code_line.contains(".unwrap()") || code_line.contains(".expect(")) {
            let trimmed = raw.trim();
            let allowed = allowlist.iter().enumerate().any(|(k, e)| {
                let hit = e.path == rel && e.needle == trimmed;
                if hit {
                    used[k] = true;
                }
                hit
            });
            if !allowed {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule: "unwrap",
                    text: trimmed.to_string(),
                });
            }
        }

        // Rule 4a: dbg! in code.
        if code_line.contains("dbg!(") {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "dbg",
                text: raw.trim().to_string(),
            });
        }

        // Rule 4b: placeholder markers anywhere, comments included.
        if PLACEHOLDER_MARKERS.iter().any(|m| raw.contains(m)) {
            findings.push(Finding {
                path: rel.to_string(),
                line: lineno,
                rule: "placeholder",
                text: raw.trim().to_string(),
            });
        }
    }
    findings
}

/// True for files that are a crate root (`src/lib.rs`, `src/main.rs`).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
}

/// True if the file opens with a `//!` doc comment (blank lines and plain
/// `//` comments may precede it; any item or attribute may not).
fn has_module_doc(src: &str) -> bool {
    for line in src.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("//!") {
            return true;
        }
        if t.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

/// Detects `as <CycleType>` on a comment/string-stripped line and returns
/// the offending type name.
fn cycle_cast(code_line: &str) -> Option<&'static str> {
    let bytes = code_line.as_bytes();
    let mut i = 0;
    while let Some(pos) = code_line[i..].find(" as ") {
        let start = i + pos;
        // Word boundary on the left of `as` is the space; check the token
        // after `as `.
        let rest = &code_line[start + 4..];
        let rest = rest.trim_start();
        for ty in CYCLE_TYPES {
            if rest.starts_with(ty) {
                let end = rest.as_bytes().get(ty.len());
                let boundary = match end {
                    None => true,
                    Some(c) => !(c.is_ascii_alphanumeric() || *c == b'_'),
                };
                if boundary {
                    return Some(ty);
                }
            }
        }
        i = start + 4;
        if i >= bytes.len() {
            break;
        }
    }
    None
}

/// Per-line flags: true when the line is inside a `#[cfg(test)]` or
/// `#[test]` item, tracked by brace depth on comment/string-stripped text.
fn test_context_lines(code: &str) -> Vec<bool> {
    let mut flags = Vec::new();
    let mut depth: i64 = 0;
    // Depths at which a test item's block was entered.
    let mut test_depths: Vec<i64> = Vec::new();
    let mut pending_attr = false;
    for line in code.lines() {
        let trimmed = line.trim();
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
            pending_attr = true;
        }
        let entering = pending_attr;
        let mut in_test_this_line = !test_depths.is_empty();
        for b in line.bytes() {
            match b {
                b'{' => {
                    depth += 1;
                    if pending_attr {
                        test_depths.push(depth);
                        pending_attr = false;
                        in_test_this_line = true;
                    }
                }
                b'}' => {
                    if test_depths.last().is_some_and(|d| *d == depth) {
                        test_depths.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        // An attribute line and the item's opening line count as test code.
        flags.push(in_test_this_line || entering);
    }
    flags
}

/// Replaces comments and string/char-literal contents with spaces,
/// preserving the line structure, so token scans cannot be fooled.
fn code_only(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut st = St::Code;
    let mut out = String::with_capacity(src.len());
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == b'r' && matches!(b.get(i + 1), Some(b'"') | Some(b'#')) {
                    // Raw string: r"..." or r#"..."# etc.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                }
                if c == b'"' {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                if c == b'\'' {
                    // Char literal vs lifetime: 'x' or '\..' is a literal.
                    let next = b.get(i + 1);
                    let after = b.get(i + 2);
                    if next == Some(&b'\\') || after == Some(&b'\'') {
                        st = St::Char;
                        out.push(' ');
                        i += 1;
                        continue;
                    }
                }
                out.push(char::from(c));
                i += 1;
            }
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == b'\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == b'"' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == b'\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let mut j = i + 1;
                    let mut h = 0;
                    while h < hashes && b.get(j) == Some(&b'#') {
                        h += 1;
                        j += 1;
                    }
                    if h == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == b'\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Char => {
                if c == b'\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == b'\'' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        std::fs::read_to_string(&path).unwrap()
    }

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        let mut used = [];
        let mut rules: Vec<&'static str> = check_file(rel, src, &[], &mut used)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        rules.sort();
        rules.dedup();
        rules
    }

    #[test]
    fn bad_cycle_cast_fixture_is_flagged() {
        let rules = rules_hit("crates/x/src/bad.rs", &fixture("bad_cycle_cast.rs"));
        assert!(rules.contains(&"cycle-cast"), "rules: {rules:?}");
    }

    #[test]
    fn bad_unwrap_fixture_is_flagged_outside_tests_only() {
        let src = fixture("bad_unwrap.rs");
        let findings = check_file("crates/x/src/bad.rs", &src, &[], &mut []);
        let unwraps: Vec<_> = findings.iter().filter(|f| f.rule == "unwrap").collect();
        // The fixture has two non-test sites and one inside #[cfg(test)].
        assert_eq!(unwraps.len(), 2, "{unwraps:?}");
        // The same file under tests/ is exempt.
        assert!(check_file("crates/x/tests/bad.rs", &src, &[], &mut [])
            .iter()
            .all(|f| f.rule != "unwrap"));
    }

    #[test]
    fn allowlisted_unwrap_is_accepted_and_marked_used() {
        let src = fixture("bad_unwrap.rs");
        let allow = parse_allowlist("# vetted\ncrates/x/src/bad.rs: let a = maybe().unwrap();\n");
        let mut used = vec![false];
        let findings = check_file("crates/x/src/bad.rs", &src, &allow, &mut used);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "unwrap").count(),
            1,
            "only the non-allowlisted site remains"
        );
        assert!(used[0]);
    }

    #[test]
    fn bad_module_doc_fixture_is_flagged() {
        let rules = rules_hit("crates/x/src/bad.rs", &fixture("bad_module_doc.rs"));
        assert!(rules.contains(&"module-doc"), "rules: {rules:?}");
    }

    #[test]
    fn module_doc_rule_covers_integration_tests() {
        // Integration tests under tests/ are held to the module-doc rule
        // like src/ files (a test's opening doc states what it proves)...
        let rules = rules_hit("crates/x/tests/bad.rs", &fixture("bad_module_doc.rs"));
        assert!(rules.contains(&"module-doc"), "rules: {rules:?}");
        // ...while files outside both trees (e.g. build scripts) are not.
        let rules = rules_hit("crates/x/build.rs", &fixture("bad_module_doc.rs"));
        assert!(!rules.contains(&"module-doc"), "rules: {rules:?}");
    }

    #[test]
    fn bad_marker_fixture_is_flagged() {
        let rules = rules_hit("crates/x/src/bad.rs", &fixture("bad_markers.rs"));
        assert!(rules.contains(&"placeholder"), "rules: {rules:?}");
        assert!(rules.contains(&"dbg"), "rules: {rules:?}");
    }

    #[test]
    fn bad_crate_root_fixture_is_flagged() {
        let src = fixture("bad_crate_root.rs");
        let findings = check_file("crates/x/src/lib.rs", &src, &[], &mut []);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "crate-root-lints")
                .count(),
            2,
            "{findings:?}"
        );
        // The same file not at a crate root is not held to that rule.
        assert!(check_file("crates/x/src/inner.rs", &src, &[], &mut [])
            .iter()
            .all(|f| f.rule != "crate-root-lints"));
    }

    #[test]
    fn clean_fixture_has_zero_findings() {
        let findings = check_file("crates/x/src/lib.rs", &fixture("clean.rs"), &[], &mut []);
        assert_eq!(findings, vec![], "clean fixture must produce no findings");
    }

    #[test]
    fn strings_and_comments_do_not_fool_the_scanner() {
        let src = "//! Doc.\nfn f() -> &'static str {\n    \".unwrap() dbg!(\"\n}\n";
        assert_eq!(rules_hit("crates/x/src/s.rs", src), Vec::<&str>::new());
        let cast_in_doc = "//! `x as DramCycle` is banned.\nfn f() {}\n";
        assert_eq!(
            rules_hit("crates/x/src/t.rs", cast_in_doc),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn cycle_cast_detects_all_four_types_and_no_others() {
        for ty in CYCLE_TYPES {
            assert_eq!(cycle_cast(&format!("let x = y as {ty};")), Some(ty));
        }
        assert_eq!(cycle_cast("let x = y as u64;"), None);
        assert_eq!(cycle_cast("let x = y as DramCycleish;"), None);
    }
}
