//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task so far is `tidy`, a dependency-free static-analysis
//! engine. Source is lexed into a token stream ([`lexer`]) and every
//! rule in [`lint`] runs over it:
//!
//! 1. `cycle-cast` — no `as`-casts involving the cycle-domain newtypes
//!    (`DramCycle`, `CpuCycle`, `DramDelta`, `CpuDelta`); conversions
//!    go through `stfm_cycles::ClockRatio` or `new()`/`get()`.
//! 2. `unwrap` — no `.unwrap()` / `.expect(...)` outside test code.
//!    Vetted exceptions live in `xtask/tidy.allow`; stale entries are
//!    an error, so the list can only shrink.
//! 3. `module-doc` — every `.rs` file under `src/` or `tests/` opens
//!    with a `//!` doc comment.
//! 4. `dbg` / `placeholder` — no debug macros in code, no
//!    to-do/fix-me markers anywhere.
//! 5. `crate-root-lints` — every crate root carries
//!    `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//! 6. `hash-iter` — no unordered `HashMap`/`HashSet` iteration in the
//!    deterministic-core crates (bit-identical replay is the
//!    simulator's load-bearing property).
//! 7. `wall-clock` — no `Instant`/`SystemTime`/`std::time` in the
//!    deterministic core; `SystemTime` in the edge layers only via
//!    `stfm_bench::wallclock`.
//! 8. `lock-unwrap` — no `lock().unwrap()` poisoning hazards in the
//!    `catch_unwind`-isolated serve/sim paths.
//! 9. `index-arith` — no arithmetic inside `[…]` slice indexing in the
//!    serve parsers; use `.get(…)`.
//!
//! `cargo xtask tidy` prints human-readable findings;
//! `--format json` emits a machine-readable findings array (for the CI
//! artifact); `--self-test` proves every registered rule fires on its
//! committed negative fixture and stays silent on `clean.rs`.
//!
//! Everything is token/line level on purpose — no `syn`, no external
//! dependencies — so `cargo xtask tidy` works on a bare offline
//! toolchain.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lexer;
mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::{parse_allowlist, Finding, Severity};

/// Output format for findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// One `path:line: severity [rule] text` line per finding.
    Human,
    /// A JSON array of finding objects (CI artifact).
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tidy") => {
            let mut format = Format::Human;
            let mut self_test = false;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--self-test" => self_test = true,
                    "--format" => match rest.next().map(String::as_str) {
                        Some("human") => format = Format::Human,
                        Some("json") => format = Format::Json,
                        other => {
                            eprintln!(
                                "--format takes `human` or `json`, got {:?}",
                                other.unwrap_or("nothing")
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    "--format=human" => format = Format::Human,
                    "--format=json" => format = Format::Json,
                    other => {
                        eprintln!("unknown tidy option `{other}`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if self_test {
                run_self_test()
            } else {
                tidy(format)
            }
        }
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: tidy");
            ExitCode::FAILURE
        }
        None => {
            eprintln!(
                "usage: cargo xtask <task>\n\ntasks:\n  tidy [--format human|json] [--self-test]\n          run the static-analysis engine"
            );
            ExitCode::FAILURE
        }
    }
}

/// `tidy --self-test`: every rule must fire on its negative fixture
/// and stay silent on the clean one.
fn run_self_test() -> ExitCode {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    match lint::self_test(&fixtures) {
        Ok(report) => {
            for line in &report {
                println!("{line}");
            }
            println!("tidy --self-test: {} rule(s) verified", report.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tidy --self-test FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs every lint over the workspace and reports findings.
fn tidy(format: Format) -> ExitCode {
    let root = match repo_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: cannot locate the workspace root");
            return ExitCode::FAILURE;
        }
    };
    let allow_path = root.join("xtask").join("tidy.allow");
    let allow_src = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let allowlist = parse_allowlist(&allow_src);

    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = relative_path(&root, path);
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding {
                    path: rel,
                    line: 0,
                    rule: "io",
                    severity: Severity::Error,
                    text: format!("unreadable: {e}"),
                });
                continue;
            }
        };
        findings.extend(lint::check_file(&rel, &src, &allowlist));
    }
    // A stale allowlist entry is an error: the list may only shrink.
    for entry in &allowlist {
        if !entry.used.get() {
            findings.push(Finding {
                path: "xtask/tidy.allow".into(),
                line: entry.line,
                rule: "stale-allow",
                severity: Severity::Error,
                text: format!("unused allowlist entry: {}: {}", entry.path, entry.needle),
            });
        }
    }

    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    match format {
        Format::Human => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "tidy: {} finding(s) ({errors} error(s)) in {} files scanned",
                findings.len(),
                files.len()
            );
        }
        Format::Json => {
            let body: Vec<String> = findings.iter().map(Finding::to_json).collect();
            println!("[{}]", body.join(",\n "));
            eprintln!(
                "tidy: {} finding(s) ({errors} error(s)) in {} files scanned",
                findings.len(),
                files.len()
            );
        }
    }
    if errors == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The repository root: the parent of this crate's manifest directory.
fn repo_root() -> Option<PathBuf> {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
}

/// `path` relative to `root`, `/`-separated.
fn relative_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` files, skipping build output, VCS state, and
/// the lint fixtures (which are deliberately dirty).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && relative_path(root, &path).starts_with("xtask/") {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lint::check_file;

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join(name);
        std::fs::read_to_string(&path).unwrap()
    }

    fn rules_hit(rel: &str, src: &str) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = check_file(rel, src, &[])
            .into_iter()
            .map(|f| f.rule)
            .collect();
        rules.sort();
        rules.dedup();
        rules
    }

    fn count_rule(rel: &str, src: &str, rule: &str) -> usize {
        check_file(rel, src, &[])
            .into_iter()
            .filter(|f| f.rule == rule)
            .count()
    }

    #[test]
    fn bad_cycle_cast_fixture_is_flagged_including_multiline() {
        let src = fixture("bad_cycle_cast.rs");
        // Three casts: single-line, parenthesized, and split across lines.
        assert_eq!(count_rule("crates/x/src/bad.rs", &src, "cycle-cast"), 3);
    }

    #[test]
    fn bad_unwrap_fixture_is_flagged_outside_tests_only() {
        let src = fixture("bad_unwrap.rs");
        // The fixture has two non-test sites and one inside #[cfg(test)].
        assert_eq!(count_rule("crates/x/src/bad.rs", &src, "unwrap"), 2);
        // The same file under tests/ is exempt.
        assert_eq!(count_rule("crates/x/tests/bad.rs", &src, "unwrap"), 0);
    }

    #[test]
    fn unwrap_variants_do_not_match() {
        let src = "//! Doc.\nfn f(v: Option<u32>) -> u32 {\n    v.unwrap_or_else(|| v.unwrap_or_default().max(v.unwrap_or(1)))\n}\n";
        assert_eq!(count_rule("crates/x/src/s.rs", src, "unwrap"), 0);
    }

    #[test]
    fn multiline_unwrap_is_still_caught() {
        let src = "//! Doc.\nfn f(v: Option<u32>) -> u32 {\n    v\n        .unwrap()\n}\n";
        assert_eq!(count_rule("crates/x/src/s.rs", src, "unwrap"), 1);
    }

    #[test]
    fn allowlisted_unwrap_is_accepted_and_marked_used() {
        let src = fixture("bad_unwrap.rs");
        let allow = parse_allowlist("# vetted\ncrates/x/src/bad.rs: let a = maybe().unwrap();\n");
        let findings = check_file("crates/x/src/bad.rs", &src, &allow);
        assert_eq!(
            findings.iter().filter(|f| f.rule == "unwrap").count(),
            1,
            "only the non-allowlisted site remains"
        );
        assert!(allow[0].used.get());
    }

    #[test]
    fn allowlist_parser_skips_comments_and_malformed_lines() {
        let allow = parse_allowlist(
            "# comment\n\nnot a valid entry\ncrates/a.rs: foo();\n  crates/b.rs: bar(); \n",
        );
        assert_eq!(allow.len(), 2);
        assert_eq!(allow[0].line, 4);
        assert_eq!(allow[0].path, "crates/a.rs");
        assert_eq!(allow[0].needle, "foo();");
        assert_eq!(allow[1].line, 5);
        assert_eq!(allow[1].path, "crates/b.rs");
        assert_eq!(allow[1].needle, "bar();");
        assert!(!allow[0].used.get() && !allow[1].used.get());
    }

    #[test]
    fn bad_module_doc_fixture_is_flagged() {
        let rules = rules_hit("crates/x/src/bad.rs", &fixture("bad_module_doc.rs"));
        assert!(rules.contains(&"module-doc"), "rules: {rules:?}");
    }

    #[test]
    fn module_doc_rule_covers_integration_tests() {
        // Integration tests under tests/ are held to the module-doc rule
        // like src/ files (a test's opening doc states what it proves)...
        let rules = rules_hit("crates/x/tests/bad.rs", &fixture("bad_module_doc.rs"));
        assert!(rules.contains(&"module-doc"), "rules: {rules:?}");
        // ...while files outside both trees (e.g. build scripts) are not.
        let rules = rules_hit("crates/x/build.rs", &fixture("bad_module_doc.rs"));
        assert!(!rules.contains(&"module-doc"), "rules: {rules:?}");
    }

    #[test]
    fn bad_marker_fixture_is_flagged() {
        let rules = rules_hit("crates/x/src/bad.rs", &fixture("bad_markers.rs"));
        assert!(rules.contains(&"placeholder"), "rules: {rules:?}");
        assert!(rules.contains(&"dbg"), "rules: {rules:?}");
    }

    #[test]
    fn bad_crate_root_fixture_is_flagged() {
        let src = fixture("bad_crate_root.rs");
        assert_eq!(
            count_rule("crates/x/src/lib.rs", &src, "crate-root-lints"),
            2
        );
        // The same file not at a crate root is not held to that rule.
        assert_eq!(
            count_rule("crates/x/src/inner.rs", &src, "crate-root-lints"),
            0
        );
    }

    #[test]
    fn hash_iter_fixture_counts_and_scoping() {
        let src = fixture("bad_hash_iter.rs");
        // for-in over &self.rank, rank.values(), seen.iter(),
        // drained.drain() — and nothing for the lookup-only `cache`.
        assert_eq!(count_rule("crates/mc/src/bad.rs", &src, "hash-iter"), 4);
        // Outside the deterministic core the rule does not apply.
        assert_eq!(count_rule("crates/serve/src/bad.rs", &src, "hash-iter"), 0);
        assert_eq!(count_rule("tools/src/bad.rs", &src, "hash-iter"), 0);
    }

    #[test]
    fn hash_iter_leaves_btreemap_and_lookups_alone() {
        let src = "//! Doc.\nuse std::collections::{BTreeMap, HashMap};\nfn f(m: &BTreeMap<u32, u32>, h: &HashMap<u32, u32>) -> u32 {\n    let mut acc = 0;\n    for (k, v) in m {\n        acc += k + v;\n    }\n    acc + h.get(&0).copied().unwrap_or(0)\n}\n";
        assert_eq!(count_rule("crates/mc/src/s.rs", src, "hash-iter"), 0);
    }

    #[test]
    fn hash_iter_applies_inside_test_code_too() {
        let src = "//! Doc.\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let mut m = std::collections::HashMap::new();\n        m.insert(1u32, 2u32);\n        for (k, v) in &m {\n            assert!(k < v);\n        }\n    }\n}\n";
        assert_eq!(count_rule("crates/mc/src/s.rs", src, "hash-iter"), 1);
    }

    #[test]
    fn wall_clock_fixture_and_scoping() {
        let src = fixture("bad_wall_clock.rs");
        // use std::time (line), Instant::now, SystemTime::now.
        assert_eq!(count_rule("crates/mc/src/bad.rs", &src, "wall-clock"), 3);
        // cancel.rs is the vetted core exception.
        assert_eq!(
            count_rule("crates/sim/src/cancel.rs", &src, "wall-clock"),
            0
        );
        // Edge layers: Instant fine, SystemTime flagged.
        assert_eq!(count_rule("crates/serve/src/bad.rs", &src, "wall-clock"), 1);
        // The bench wallclock helper is the vetted edge exception.
        assert_eq!(
            count_rule("crates/bench/src/wallclock.rs", &src, "wall-clock"),
            0
        );
        // Outside every scope nothing fires.
        assert_eq!(count_rule("tools/src/bad.rs", &src, "wall-clock"), 0);
    }

    #[test]
    fn lock_unwrap_fixture_and_scoping() {
        let src = fixture("bad_lock_unwrap.rs");
        // unwrap + expect flagged; PoisonError recovery not.
        assert_eq!(
            count_rule("crates/serve/src/bad.rs", &src, "lock-unwrap"),
            2
        );
        assert_eq!(count_rule("crates/sim/src/bad.rs", &src, "lock-unwrap"), 2);
        assert_eq!(count_rule("crates/mc/src/bad.rs", &src, "lock-unwrap"), 0);
    }

    #[test]
    fn index_arith_fixture_and_scoping() {
        let src = fixture("bad_index_arith.rs");
        // bytes[pos + 1] and bytes[pos..pos + 4]; .get(pos + 1) and
        // bytes[0] stay clean.
        assert_eq!(
            count_rule("crates/serve/src/bad.rs", &src, "index-arith"),
            2
        );
        assert_eq!(count_rule("crates/mc/src/bad.rs", &src, "index-arith"), 0);
    }

    #[test]
    fn index_arith_ignores_float_exponents() {
        // `1e-9` lexes as one number: its sign is not index arithmetic.
        let src = "//! Doc.\nfn f(xs: &[f64], i: usize) -> f64 {\n    xs[i].max(1e-9)\n}\n";
        assert_eq!(count_rule("crates/serve/src/s.rs", src, "index-arith"), 0);
    }

    #[test]
    fn clean_fixture_has_zero_findings_under_every_scope() {
        let src = fixture("clean.rs");
        for vpath in [
            "crates/mc/src/lib.rs",
            "crates/serve/src/lib.rs",
            "crates/bench/src/lib.rs",
            "crates/sim/src/lib.rs",
        ] {
            let findings = check_file(vpath, &src, &[]);
            assert!(findings.is_empty(), "{vpath}: {findings:?}");
        }
    }

    #[test]
    fn strings_and_comments_do_not_fool_the_scanner() {
        let src =
            "//! Doc.\nfn f() -> &'static str {\n    \".unwrap() dbg!( lock().unwrap()\"\n}\n";
        assert_eq!(rules_hit("crates/serve/src/s.rs", src), Vec::<&str>::new());
        let cast_in_doc = "//! `x as DramCycle` is banned.\n//! So is `map.iter()` and `Instant::now()`.\nfn f() {}\n";
        assert_eq!(
            rules_hit("crates/mc/src/t.rs", cast_in_doc),
            Vec::<&str>::new()
        );
    }

    #[test]
    fn cycle_cast_detects_all_four_types_and_no_others() {
        for ty in lint::CYCLE_TYPES {
            let src = format!("//! D.\nfn f(y: u64) {{ let _ = y as {ty}; }}\n");
            assert_eq!(count_rule("crates/mc/src/s.rs", &src, "cycle-cast"), 1);
        }
        let src = "//! D.\nfn f(y: u64) { let _ = y as u64; }\n";
        assert_eq!(count_rule("crates/mc/src/s.rs", src, "cycle-cast"), 0);
        let src = "//! D.\nfn f(y: u64) { let _ = y as DramCycleish; }\n";
        assert_eq!(count_rule("crates/mc/src/s.rs", src, "cycle-cast"), 0);
    }

    #[test]
    fn self_test_passes_on_committed_fixtures() {
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let report = lint::self_test(&fixtures).unwrap();
        assert_eq!(report.len(), lint::all_rules().len());
    }

    #[test]
    fn json_output_is_escaped() {
        let f = Finding {
            path: "a/b.rs".into(),
            line: 3,
            rule: "unwrap",
            severity: Severity::Error,
            text: "say \"hi\"\\".into(),
        };
        assert_eq!(
            f.to_json(),
            r#"{"path":"a/b.rs","line":3,"rule":"unwrap","severity":"error","text":"say \"hi\"\\"}"#
        );
    }
}
