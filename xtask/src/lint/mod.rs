//! The lint framework: rule trait, per-file context, scoping config,
//! allowlist, and the `--self-test` harness.
//!
//! Every rule is one module in this directory implementing [`Rule`].
//! A rule receives a [`FileCtx`] — the token stream from
//! [`crate::lexer`], the raw source lines, and precomputed
//! test-context flags — and appends [`Finding`]s. Scoping is data,
//! not code: the `DETERMINISTIC_CORE` / `WALL_CLOCK_*` / `PANIC_*`
//! path-prefix tables below say where each semantic rule applies, so
//! adding a crate to the deterministic core is a one-line change.
//!
//! To add a rule: create `lint/<name>.rs` with a unit struct
//! implementing [`Rule`], give it a negative fixture under
//! `xtask/fixtures/`, and register it in [`all_rules`]. The
//! `--self-test` mode then enforces that the rule fires on its
//! fixture and stays silent on `clean.rs` — an unregistered or
//! non-firing rule fails CI, so dead lints cannot accumulate.

use std::cell::Cell;
use std::fmt;
use std::path::Path;

use crate::lexer::{lex, Token};

mod crate_root;
mod cycle_cast;
#[cfg(test)]
pub use cycle_cast::CYCLE_TYPES;
mod hash_iter;
mod index_arith;
mod lock_unwrap;
mod markers;
mod module_doc;
mod unwrap;
mod wall_clock;

/// Crates whose `src/` trees must stay bit-deterministic: no unordered
/// map/set iteration, no wall-clock reads. These are the crates on the
/// replay path of the differential fuzz suite and the result cache.
pub const DETERMINISTIC_CORE: [&str; 6] = [
    "crates/core/src/",
    "crates/cpu/src/",
    "crates/dram/src/",
    "crates/mc/src/",
    "crates/sim/src/",
    "crates/workloads/src/",
];

/// Files inside the deterministic core that may read the wall clock.
/// `cancel.rs` implements deadline cancellation — wall-clock is its job,
/// and it never feeds simulation state.
pub const WALL_CLOCK_CORE_ALLOW: [&str; 1] = ["crates/sim/src/cancel.rs"];

/// Edge layers where `Instant` latency measurement is legitimate but
/// `SystemTime` (calendar time) must still flow through one audited
/// helper so timestamps cannot silently leak into cached results.
pub const WALL_CLOCK_EDGE: [&str; 3] =
    ["crates/bench/src/", "crates/cli/src/", "crates/serve/src/"];

/// The single place the edge layers may call `SystemTime::now`.
pub const WALL_CLOCK_EDGE_ALLOW: [&str; 1] = ["crates/bench/src/wallclock.rs"];

/// Crates whose `src/` trees run under `catch_unwind` isolation (the
/// serve degradation ladder) — a poisoned lock or a sliced-index panic
/// here turns one bad cell into a wedged service.
pub const PANIC_ISOLATED: [&str; 2] = ["crates/serve/src/", "crates/sim/src/"];

/// Where slice-index arithmetic is banned outright: the serve parsers
/// that feed `catch_unwind` cells with untrusted input.
pub const INDEX_ARITH_SCOPE: [&str; 1] = ["crates/serve/src/"];

/// True if `rel` falls under any of the given `/`-separated prefixes
/// (exact file paths match themselves).
pub fn in_scope(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p) || rel == *p)
}

/// How bad a finding is. `Error` findings fail the run; `Warn` findings
/// are reported (and serialized) but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed before merge.
    Error,
    /// Advisory; surfaced in output and the JSON artifact only.
    /// Reserved for rules being phased in against an unclean tree —
    /// every current rule is `Error`.
    #[allow(dead_code)]
    Warn,
}

impl Severity {
    /// Lower-case label used in human and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the repository root, `/`-separated.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Short rule identifier.
    pub rule: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Trimmed offending line, or a description for whole-file findings.
    pub text: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.path,
            self.line,
            self.severity.label(),
            self.rule,
            self.text
        )
    }
}

impl Finding {
    /// Serializes the finding as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"path":"{}","line":{},"rule":"{}","severity":"{}","text":"{}"}}"#,
            json_escape(&self.path),
            self.line,
            json_escape(self.rule),
            self.severity.label(),
            json_escape(&self.text)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One vetted `unwrap`/`expect` site from `tidy.allow`.
#[derive(Debug)]
pub struct AllowEntry {
    /// 1-based line in `tidy.allow` (for stale-entry reports).
    pub line: usize,
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Trimmed content the offending line must equal.
    pub needle: String,
    /// Set when a lint consumed the entry; unused entries are stale.
    pub used: Cell<bool>,
}

/// Parses `tidy.allow`: `path: trimmed line content`, `#` comments.
pub fn parse_allowlist(src: &str) -> Vec<AllowEntry> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((path, needle)) = line.split_once(": ") {
            out.push(AllowEntry {
                line: i + 1,
                path: path.trim().to_string(),
                needle: needle.trim().to_string(),
                used: Cell::new(false),
            });
        }
    }
    out
}

/// Everything a rule may look at for one file.
pub struct FileCtx<'a> {
    /// Repo-relative `/`-separated path.
    pub rel: &'a str,
    /// Raw source text.
    pub src: &'a str,
    /// Raw source split into lines (1-based access via `line - 1`).
    pub raw_lines: Vec<&'a str>,
    /// The lexed token stream (comments/literal bodies stripped).
    pub tokens: Vec<Token>,
    /// True when the file lives under a `tests/` directory.
    pub in_tests_dir: bool,
    /// Per-token flag: inside a `#[cfg(test)]` / `#[test]` item.
    pub test_flags: Vec<bool>,
    /// The vetted-unwrap allowlist (entries mark themselves used).
    pub allow: &'a [AllowEntry],
}

impl<'a> FileCtx<'a> {
    /// Lexes `src` and precomputes the per-token test-context flags.
    pub fn new(rel: &'a str, src: &'a str, allow: &'a [AllowEntry]) -> Self {
        let tokens = lex(src);
        let test_flags = test_token_flags(&tokens);
        FileCtx {
            rel,
            src,
            raw_lines: src.lines().collect(),
            tokens,
            in_tests_dir: rel.split('/').any(|c| c == "tests"),
            test_flags,
            allow,
        }
    }

    /// True when token `i` sits in test-only code (a `tests/` file or a
    /// `#[cfg(test)]` / `#[test]` item).
    pub fn is_test_token(&self, i: usize) -> bool {
        self.in_tests_dir || self.test_flags.get(i).copied().unwrap_or(false)
    }

    /// The trimmed raw source line a token reports (empty if out of
    /// range, which only happens on pathological input).
    pub fn trimmed_line(&self, line: u32) -> &str {
        self.raw_lines
            .get(line as usize - 1)
            .map_or("", |l| l.trim())
    }

    /// Emits a finding anchored at `line`.
    pub fn push(
        &self,
        out: &mut Vec<Finding>,
        rule: &'static str,
        severity: Severity,
        line: u32,
        text: String,
    ) {
        out.push(Finding {
            path: self.rel.to_string(),
            line: line as usize,
            rule,
            severity,
            text,
        });
    }
}

/// Per-token flags: true when the token is part of a `#[cfg(test)]` or
/// `#[test]` item (the attribute itself, the item header, and the
/// brace-delimited body), tracked by brace depth on the token stream.
fn test_token_flags(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut depth: i64 = 0;
    // Depths at which a test item's block was entered.
    let mut test_depths: Vec<i64> = Vec::new();
    let mut pending_attr = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // An outer attribute `#[...]`: scan to the matching `]`.
        if t.is_punct('#') && tokens.get(i + 1).is_some_and(|u| u.is_punct('[')) {
            let mut j = i + 2;
            let mut d = 1i64;
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && d > 0 {
                let u = &tokens[j];
                if u.is_punct('[') {
                    d += 1;
                } else if u.is_punct(']') {
                    d -= 1;
                } else if u.is_ident("test") {
                    has_test = true;
                } else if u.is_ident("not") {
                    has_not = true;
                }
                j += 1;
            }
            if has_test && !has_not {
                pending_attr = true;
            }
            let covered = pending_attr || !test_depths.is_empty();
            for flag in &mut flags[i..j] {
                *flag = covered;
            }
            i = j;
            continue;
        }
        flags[i] = pending_attr || !test_depths.is_empty();
        if t.is_punct('{') {
            depth += 1;
            if pending_attr {
                test_depths.push(depth);
                pending_attr = false;
            }
        } else if t.is_punct('}') {
            if test_depths.last().is_some_and(|d| *d == depth) {
                test_depths.pop();
            }
            depth -= 1;
        } else if t.is_punct(';') && test_depths.is_empty() {
            // `#[test]`-attributed statement without a block (should not
            // happen in practice); don't let the flag leak forever.
            pending_attr = false;
        }
        i += 1;
    }
    flags
}

/// True for files that are a crate root (`src/lib.rs`, `src/main.rs`).
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
}

/// A lint rule: a name, a severity, a negative fixture proving it
/// fires, and the check itself.
pub trait Rule {
    /// Short kebab-case identifier used in findings and JSON output.
    fn name(&self) -> &'static str;

    /// How findings from this rule are classified.
    fn severity(&self) -> Severity {
        Severity::Error
    }

    /// `(fixture file name, virtual repo path)` — the committed
    /// negative fixture this rule must fire on, and the repo-relative
    /// path it is linted under (so scoped rules see an in-scope path).
    fn fixture(&self) -> (&'static str, &'static str);

    /// Appends this rule's findings for one file.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>);
}

/// The rule registry, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(cycle_cast::CycleCast),
        Box::new(unwrap::Unwrap),
        Box::new(module_doc::ModuleDoc),
        Box::new(markers::Dbg),
        Box::new(markers::Placeholder),
        Box::new(crate_root::CrateRoot),
        Box::new(hash_iter::HashIter),
        Box::new(wall_clock::WallClock),
        Box::new(lock_unwrap::LockUnwrap),
        Box::new(index_arith::IndexArith),
    ]
}

/// Runs every rule over one file.
pub fn check_file(rel: &str, src: &str, allow: &[AllowEntry]) -> Vec<Finding> {
    let ctx = FileCtx::new(rel, src, allow);
    let mut out = Vec::new();
    for rule in all_rules() {
        rule.check(&ctx, &mut out);
    }
    out
}

/// `--self-test`: proves every registered rule fires on its committed
/// negative fixture and stays silent on `clean.rs` linted under the
/// same virtual path. Returns one human-readable line per rule.
pub fn self_test(fixtures_dir: &Path) -> Result<Vec<String>, String> {
    let clean = std::fs::read_to_string(fixtures_dir.join("clean.rs"))
        .map_err(|e| format!("cannot read fixture clean.rs: {e}"))?;
    let mut report = Vec::new();
    for rule in all_rules() {
        let (fixture, vpath) = rule.fixture();
        let src = std::fs::read_to_string(fixtures_dir.join(fixture))
            .map_err(|e| format!("cannot read fixture {fixture}: {e}"))?;
        let ctx = FileCtx::new(vpath, &src, &[]);
        let mut out = Vec::new();
        rule.check(&ctx, &mut out);
        let hits = out.iter().filter(|f| f.rule == rule.name()).count();
        if hits == 0 {
            return Err(format!(
                "rule `{}` did not fire on its fixture {fixture} (as {vpath})",
                rule.name()
            ));
        }
        let cctx = FileCtx::new(vpath, &clean, &[]);
        let mut clean_out = Vec::new();
        rule.check(&cctx, &mut clean_out);
        if let Some(f) = clean_out.first() {
            return Err(format!(
                "rule `{}` fired on clean.rs (as {vpath}): {f}",
                rule.name()
            ));
        }
        report.push(format!(
            "rule `{}`: {hits} finding(s) on {fixture}, silent on clean.rs",
            rule.name()
        ));
    }
    Ok(report)
}
