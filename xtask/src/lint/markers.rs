//! Rules `dbg` and `placeholder`: no debug macros in code, no
//! to-do/fix-me markers anywhere (comments included).
//!
//! `dbg` matches the token sequence `dbg ! (` so an identifier like
//! `debug` or a string containing the text cannot trip it. The
//! placeholder rule deliberately scans *raw* lines — a marker in a
//! comment is exactly the kind the rule exists to catch.

use super::{FileCtx, Finding, Rule};

/// Placeholder markers banned anywhere in the tree. Assembled at
/// compile time from halves so this file does not flag itself.
pub const PLACEHOLDER_MARKERS: [&str; 2] = [concat!("TO", "DO"), concat!("FIX", "ME")];

/// Bans `dbg!(...)` invocations in committed code.
pub struct Dbg;

impl Rule for Dbg {
    fn name(&self) -> &'static str {
        "dbg"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_markers.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (i, t) in ctx.tokens.iter().enumerate() {
            if t.is_ident("dbg")
                && ctx.tokens.get(i + 1).is_some_and(|u| u.is_punct('!'))
                && ctx.tokens.get(i + 2).is_some_and(|u| u.is_punct('('))
            {
                ctx.push(
                    out,
                    self.name(),
                    self.severity(),
                    t.line,
                    ctx.trimmed_line(t.line).to_string(),
                );
            }
        }
    }
}

/// Bans to-do/fix-me markers anywhere, comments included.
pub struct Placeholder;

impl Rule for Placeholder {
    fn name(&self) -> &'static str {
        "placeholder"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_markers.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (i, raw) in ctx.raw_lines.iter().enumerate() {
            if PLACEHOLDER_MARKERS.iter().any(|m| raw.contains(m)) {
                ctx.push(
                    out,
                    self.name(),
                    self.severity(),
                    i as u32 + 1,
                    raw.trim().to_string(),
                );
            }
        }
    }
}
