//! Rule `wall-clock`: no wall-clock reads where determinism or
//! reproducibility depends on their absence.
//!
//! Two scopes, both path-prefix data in [`super`]:
//!
//! * **Deterministic core** (`DETERMINISTIC_CORE` minus
//!   `WALL_CLOCK_CORE_ALLOW`): any `Instant`, `SystemTime`, or
//!   `std::time` reference is banned. Simulated time is the only clock
//!   these crates may observe; a wall-clock read is either dead code
//!   or a replay-divergence bug. `sim/src/cancel.rs` is the one
//!   allowed file — deadline cancellation is its purpose and its
//!   clock never feeds simulation state.
//! * **Edge layers** (`WALL_CLOCK_EDGE` minus `WALL_CLOCK_EDGE_ALLOW`):
//!   `Instant` (monotonic latency measurement) is legitimate, but
//!   calendar time (`SystemTime`) must flow through
//!   `stfm_bench::wallclock` so there is exactly one audited site
//!   where timestamps enter output artifacts.

use super::{
    FileCtx, Finding, Rule, DETERMINISTIC_CORE, WALL_CLOCK_CORE_ALLOW, WALL_CLOCK_EDGE,
    WALL_CLOCK_EDGE_ALLOW,
};

/// See the module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_wall_clock.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        let core = super::in_scope(ctx.rel, &DETERMINISTIC_CORE)
            && !super::in_scope(ctx.rel, &WALL_CLOCK_CORE_ALLOW);
        let edge = super::in_scope(ctx.rel, &WALL_CLOCK_EDGE)
            && !super::in_scope(ctx.rel, &WALL_CLOCK_EDGE_ALLOW);
        if !core && !edge {
            return;
        }
        let mut reported_lines = Vec::new();
        let mut report = |line: u32, text: String, out: &mut Vec<Finding>| {
            if !reported_lines.contains(&line) {
                reported_lines.push(line);
                ctx.push(out, self.name(), self.severity(), line, text);
            }
        };
        for (i, t) in ctx.tokens.iter().enumerate() {
            if t.is_ident("SystemTime") {
                let why = if core {
                    "deterministic core must not read the wall clock"
                } else {
                    "calendar time must go through stfm_bench::wallclock"
                };
                report(t.line, format!("`SystemTime` use; {why}"), out);
            }
            if core && t.is_ident("Instant") {
                report(
                    t.line,
                    "`Instant` use; deterministic core must not read the wall clock".to_string(),
                    out,
                );
            }
            if core
                && t.is_ident("std")
                && ctx.tokens.get(i + 1).is_some_and(|u| u.is_punct(':'))
                && ctx.tokens.get(i + 2).is_some_and(|u| u.is_punct(':'))
                && ctx.tokens.get(i + 3).is_some_and(|u| u.is_ident("time"))
            {
                report(
                    t.line,
                    "`std::time` use; deterministic core must not read the wall clock".to_string(),
                    out,
                );
            }
        }
    }
}
