//! Rule `hash-iter`: no unordered `HashMap`/`HashSet` iteration in the
//! deterministic-core crates.
//!
//! The simulator's load-bearing property is bit-identical replay: the
//! differential fuzz suite, the golden digests, and the serve result
//! cache all assume it. Iterating a hash table visits entries in
//! randomized order (std's SipHash keys differ per process), so any
//! `for … in &map`, `.iter()`, `.keys()`, `.values()`, `.drain()` etc.
//! over a `HashMap`/`HashSet` in policy or model code is a
//! nondeterminism hazard even when today's loop body happens to be
//! commutative — the next edit to that loop breaks replay silently.
//! Deterministic code uses `BTreeMap`/`BTreeSet` (or sorts first).
//!
//! Lookup-only use (`get`/`insert`/`contains`/`entry`/`len`) is fine
//! and not flagged. The rule applies inside test code too: a test that
//! iterates a hash map is a flaky test waiting to happen.
//!
//! Detection is two-pass over the token stream: first collect every
//! identifier *declared* with a `HashMap`/`HashSet` type (struct
//! fields, `let` bindings with either an explicit type or a
//! `HashMap::…` initializer, function parameters), then flag banned
//! method calls on those names and bare `for … in [&[mut]] [self.]name`
//! loops.

use super::{FileCtx, Finding, Rule, DETERMINISTIC_CORE};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// Methods that expose hash-table iteration order.
const BANNED_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// See the module docs.
pub struct HashIter;

/// Is this token the `HashMap` or `HashSet` type name?
fn hash_type(t: &Token) -> Option<&'static str> {
    if t.kind != TokenKind::Ident {
        return None;
    }
    match t.text.as_str() {
        "HashMap" => Some("HashMap"),
        "HashSet" => Some("HashSet"),
        _ => None,
    }
}

/// Collects identifiers declared with a hash-table type, mapped to the
/// type name ("HashMap"/"HashSet") for the finding message.
fn collect_hash_names(tokens: &[Token]) -> BTreeMap<String, &'static str> {
    let mut names = BTreeMap::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name: …HashMap<…>` — struct field or typed binding/param.
        // Skip `name::` (the second `:` means a path, not a type
        // ascription). Scan a bounded window, tracking `<…>` depth so a
        // depth-0 `,`/`)`/`;` ends *this* declaration and the window
        // cannot leak into a neighboring parameter's type.
        if tokens.get(i + 1).is_some_and(|u| u.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|u| u.is_punct(':'))
        {
            let mut angle = 0i64;
            for u in tokens.iter().skip(i + 2).take(12) {
                if u.is_punct('<') {
                    angle += 1;
                } else if u.is_punct('>') {
                    angle -= 1;
                } else if angle == 0
                    && (u.is_punct(',')
                        || u.is_punct(')')
                        || u.is_punct(';')
                        || u.is_punct('{')
                        || u.is_punct('='))
                {
                    break;
                } else if let Some(ty) = hash_type(u) {
                    names.insert(t.text.clone(), ty);
                    break;
                }
            }
        }
        // `let [mut] name = …HashMap::…` — untyped binding whose
        // initializer names the type.
        if t.is_ident("let") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|u| u.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = tokens.get(j).filter(|u| u.kind == TokenKind::Ident) else {
                continue;
            };
            if !tokens.get(j + 1).is_some_and(|u| u.is_punct('=')) {
                continue;
            }
            for u in tokens.iter().skip(j + 2).take(8) {
                if u.is_punct(';') {
                    break;
                }
                if let Some(ty) = hash_type(u) {
                    names.insert(name.text.clone(), ty);
                    break;
                }
            }
        }
    }
    names
}

impl Rule for HashIter {
    fn name(&self) -> &'static str {
        "hash-iter"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_hash_iter.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !super::in_scope(ctx.rel, &DETERMINISTIC_CORE) {
            return;
        }
        let names = collect_hash_names(&ctx.tokens);
        if names.is_empty() {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            // `name.banned_method(` on a hash-declared name.
            if let Some(ty) = names
                .get(t.text.as_str())
                .filter(|_| t.kind == TokenKind::Ident)
            {
                if toks.get(i + 1).is_some_and(|u| u.is_punct('.'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|u| BANNED_METHODS.iter().any(|m| u.is_ident(m)))
                    && toks.get(i + 3).is_some_and(|u| u.is_punct('('))
                {
                    let method = &toks[i + 2].text;
                    ctx.push(
                        out,
                        self.name(),
                        self.severity(),
                        t.line,
                        format!(
                            "unordered {ty} iteration `{}.{method}()`; use BTreeMap/BTreeSet or collect-and-sort",
                            t.text
                        ),
                    );
                }
            }
            // `for … in [&[mut]] [self.]name {` — implicit IntoIterator
            // over the table itself.
            if t.is_ident("for") {
                if let Some((name, ty, line)) = for_loop_over_hash(toks, i, &names) {
                    ctx.push(
                        out,
                        self.name(),
                        self.severity(),
                        line,
                        format!(
                            "unordered {ty} iteration `for … in {name}`; use BTreeMap/BTreeSet or collect-and-sort"
                        ),
                    );
                }
            }
        }
    }
}

/// If the `for` loop starting at token `i` iterates a bare
/// hash-declared name (`for p in &map`, `for (k, v) in self.map`),
/// returns `(name, type, line)`. Loops over arbitrary expressions
/// (`for x in build(&map)`) are left to the method-call check.
fn for_loop_over_hash(
    toks: &[Token],
    i: usize,
    names: &BTreeMap<String, &'static str>,
) -> Option<(String, &'static str, u32)> {
    // Find `in` at bracket depth 0 (the pattern may contain `(`/`[`).
    let mut depth = 0i64;
    let mut j = i + 1;
    let limit = (i + 40).min(toks.len());
    loop {
        if j >= limit {
            return None;
        }
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
            // Not a loop header after all (e.g. `impl X for Y {`).
            return None;
        }
        j += 1;
    }
    // The iterated expression: only `&`, `mut`, `self`, `.`, and
    // identifiers may appear, and it must end at `{` — anything else
    // (a call, an index, a range) is not a bare map expression.
    let mut last_ident: Option<&Token> = None;
    for t in toks.iter().take(limit).skip(j + 1) {
        if t.is_punct('{') {
            let name = last_ident?;
            let ty = names.get(name.text.as_str())?;
            return Some((name.text.clone(), ty, name.line));
        }
        if t.is_punct('&') || t.is_punct('.') || t.is_ident("mut") || t.is_ident("self") {
            continue;
        }
        if t.kind == TokenKind::Ident {
            last_ident = Some(t);
            continue;
        }
        return None;
    }
    None
}
