//! Rule `index-arith`: no arithmetic inside slice/array `[…]` indexing
//! in the serve parsers.
//!
//! `bytes[pos + 4]` panics on overflowing input; inside the serve
//! layer's `catch_unwind` cells that panic is *survivable*, which is
//! exactly why it hides — the service degrades instead of crashing and
//! the truncated-input bug ships. Indexing with a computed offset must
//! use `.get(start..end)` / `.get(i + 1)` and handle `None`
//! explicitly. Plain `bytes[i]` (no arithmetic) stays allowed: those
//! sites have their bounds checked adjacently and rewriting them all
//! would bury the signal. Test code is exempt — a panic in a test is a
//! failed test, which is the point.

use super::{FileCtx, Finding, Rule, INDEX_ARITH_SCOPE};
use crate::lexer::{Token, TokenKind};

/// See the module docs.
pub struct IndexArith;

/// Can this token end an expression (making a following `[` an index,
/// `+`/`-` binary)?
fn ends_expression(t: &Token) -> bool {
    matches!(t.kind, TokenKind::Ident | TokenKind::Number) || t.is_punct(')') || t.is_punct(']')
}

impl Rule for IndexArith {
    fn name(&self) -> &'static str {
        "index-arith"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_index_arith.rs", "crates/serve/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !super::in_scope(ctx.rel, &INDEX_ARITH_SCOPE) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            // A `[` that *indexes* (previous token ends an expression;
            // `#[attr]`, array literals, and types don't qualify).
            if !toks[i].is_punct('[') || ctx.is_test_token(i) {
                continue;
            }
            if i == 0 || !ends_expression(&toks[i - 1]) {
                continue;
            }
            // Scan to the matching `]`, looking for a *binary* `+`/`-`
            // (one whose left neighbor also ends an expression, so
            // unary negation and range defaults don't count).
            let mut depth = 1i64;
            let mut j = i + 1;
            let mut arith: Option<u32> = None;
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                } else if (t.is_punct('+') || t.is_punct('-'))
                    && ends_expression(&toks[j - 1])
                    && arith.is_none()
                {
                    arith = Some(t.line);
                }
                j += 1;
            }
            if let Some(line) = arith {
                ctx.push(
                    out,
                    self.name(),
                    self.severity(),
                    line,
                    format!(
                        "arithmetic inside `[…]` indexing can panic in a catch_unwind cell; \
                         use `.get(…)` and handle None: {}",
                        ctx.trimmed_line(line)
                    ),
                );
            }
        }
    }
}
