//! Rule `crate-root-lints`: every `src/lib.rs` / `src/main.rs` must
//! carry `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//!
//! Matching the inner-attribute token sequence (`# ! [ level ( lint ) ]`)
//! instead of a trimmed-line string means formatting differences — or
//! an attribute split across lines — cannot hide a missing lint gate.

use super::{is_crate_root, FileCtx, Finding, Rule};
use crate::lexer::Token;

/// The required `(level, lint)` inner attributes.
const REQUIRED: [(&str, &str); 2] = [("forbid", "unsafe_code"), ("deny", "missing_docs")];

/// See the module docs.
pub struct CrateRoot;

/// True if the token stream contains `# ! [ level ( lint ) ]`.
fn has_inner_attr(tokens: &[Token], level: &str, lint: &str) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident(lint)
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

impl Rule for CrateRoot {
    fn name(&self) -> &'static str {
        "crate-root-lints"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_crate_root.rs", "crates/mc/src/lib.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !is_crate_root(ctx.rel) {
            return;
        }
        for (level, lint) in REQUIRED {
            if !has_inner_attr(&ctx.tokens, level, lint) {
                ctx.push(
                    out,
                    self.name(),
                    self.severity(),
                    1,
                    format!("crate root is missing `#![{level}({lint})]`"),
                );
            }
        }
    }
}
