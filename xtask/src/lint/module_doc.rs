//! Rule `module-doc`: every `.rs` file under a `src/` or `tests/`
//! directory must open with a `//!` doc comment.
//!
//! For `src/` files the opening doc states the module's contract; for
//! integration tests it states what property the test proves. Files
//! outside both trees (e.g. build scripts) are exempt. This rule works
//! on the raw source — doc comments are exactly what the lexer strips.

use super::{FileCtx, Finding, Rule};

/// See the module docs.
pub struct ModuleDoc;

/// True if the file opens with a `//!` doc comment (blank lines and
/// plain `//` comments may precede it; any item or attribute may not).
pub fn has_module_doc(src: &str) -> bool {
    for line in src.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with("//!") {
            return true;
        }
        if t.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

impl Rule for ModuleDoc {
    fn name(&self) -> &'static str {
        "module-doc"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_module_doc.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        let in_src = ctx.rel.split('/').any(|c| c == "src");
        if (in_src || ctx.in_tests_dir) && !has_module_doc(ctx.src) {
            ctx.push(
                out,
                self.name(),
                self.severity(),
                1,
                "file does not open with a `//!` module doc comment".into(),
            );
        }
    }
}
