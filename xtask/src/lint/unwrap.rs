//! Rule `unwrap`: no `.unwrap()` / `.expect(...)` outside test code.
//!
//! Production paths return errors or degrade; panics are reserved for
//! tests (`#[cfg(test)]` / `#[test]` items, `tests/` directories).
//! Vetted exceptions live in `xtask/tidy.allow` as `path: trimmed-line`
//! entries; an entry that no longer matches is itself an error, so the
//! allowlist can only shrink.
//!
//! Token-level matching requires the *full* method identifier to be
//! `unwrap`/`expect` followed by `(`, so `unwrap_or_else`,
//! `unwrap_or_default`, and `expect_err` never match — the old
//! substring check relied on the substring `".unwrap()"` instead.

use super::{FileCtx, Finding, Rule};

/// See the module docs.
pub struct Unwrap;

impl Rule for Unwrap {
    fn name(&self) -> &'static str {
        "unwrap"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_unwrap.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (i, t) in ctx.tokens.iter().enumerate() {
            if !t.is_punct('.') || ctx.is_test_token(i) {
                continue;
            }
            let (Some(method), Some(paren)) = (ctx.tokens.get(i + 1), ctx.tokens.get(i + 2)) else {
                continue;
            };
            if !(method.is_ident("unwrap") || method.is_ident("expect")) || !paren.is_punct('(') {
                continue;
            }
            let trimmed = ctx.trimmed_line(method.line);
            let allowed = ctx.allow.iter().any(|e| {
                let hit = e.path == ctx.rel && e.needle == trimmed;
                if hit {
                    e.used.set(true);
                }
                hit
            });
            if !allowed {
                ctx.push(
                    out,
                    self.name(),
                    self.severity(),
                    method.line,
                    trimmed.to_string(),
                );
            }
        }
    }
}
