//! Rule `cycle-cast`: no `as`-casts involving the cycle-domain
//! newtypes.
//!
//! Conversions between clock domains must go through
//! `stfm_cycles::ClockRatio` or the explicit `new()`/`get()`
//! accessors, so every crossing is visible and auditable. Matching on
//! the token stream means a cast split across lines (`x as\n
//! DramCycle`) or wrapped in a macro invocation is caught exactly like
//! a single-line one — the line-level predecessor of this rule could
//! be dodged by a newline after `as`.

use super::{FileCtx, Finding, Rule};
use crate::lexer::TokenKind;

/// The cycle-domain newtypes whose `as`-casts are banned.
pub const CYCLE_TYPES: [&str; 4] = ["DramCycle", "CpuCycle", "DramDelta", "CpuDelta"];

/// See the module docs.
pub struct CycleCast;

impl Rule for CycleCast {
    fn name(&self) -> &'static str {
        "cycle-cast"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_cycle_cast.rs", "crates/mc/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        for (i, t) in ctx.tokens.iter().enumerate() {
            if !t.is_ident("as") {
                continue;
            }
            let Some(next) = ctx.tokens.get(i + 1) else {
                continue;
            };
            if next.kind == TokenKind::Ident {
                if let Some(ty) = CYCLE_TYPES.iter().find(|ty| next.text == **ty) {
                    ctx.push(
                        out,
                        self.name(),
                        self.severity(),
                        t.line,
                        format!("`as {ty}` cast; use ClockRatio / new() / get() instead"),
                    );
                }
            }
        }
    }
}
