//! Rule `lock-unwrap`: no `lock().unwrap()` / `lock().expect(…)` in
//! the `catch_unwind`-isolated crates.
//!
//! The serve layer's degradation ladder (PR 8) runs each sweep cell
//! under `catch_unwind`: one panicking cell is reported and the run
//! continues. A panic while a `Mutex` is held poisons it, and every
//! later `lock().unwrap()` then panics too — turning one bad cell into
//! a wedged service. Shared state in these crates recovers instead:
//! `lock().unwrap_or_else(std::sync::PoisonError::into_inner)` (the
//! guarded data is append-only or idempotent here, so the poisoned
//! value is safe to reuse). Test code is exempt — a poisoned lock in a
//! test should fail loudly.

use super::{FileCtx, Finding, Rule, PANIC_ISOLATED};

/// See the module docs.
pub struct LockUnwrap;

impl Rule for LockUnwrap {
    fn name(&self) -> &'static str {
        "lock-unwrap"
    }

    fn fixture(&self) -> (&'static str, &'static str) {
        ("bad_lock_unwrap.rs", "crates/serve/src/bad.rs")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
        if !super::in_scope(ctx.rel, &PANIC_ISOLATED) {
            return;
        }
        let toks = &ctx.tokens;
        for i in 0..toks.len() {
            if ctx.is_test_token(i) {
                continue;
            }
            let lock_call = toks[i].is_ident("lock")
                && toks.get(i + 1).is_some_and(|u| u.is_punct('('))
                && toks.get(i + 2).is_some_and(|u| u.is_punct(')'))
                && toks.get(i + 3).is_some_and(|u| u.is_punct('.'))
                && toks
                    .get(i + 4)
                    .is_some_and(|u| u.is_ident("unwrap") || u.is_ident("expect"))
                && toks.get(i + 5).is_some_and(|u| u.is_punct('('));
            if lock_call {
                ctx.push(
                    out,
                    self.name(),
                    self.severity(),
                    toks[i].line,
                    format!(
                        "`lock().{}()` propagates mutex poisoning across catch_unwind; \
                         use unwrap_or_else(PoisonError::into_inner)",
                        toks[i + 4].text
                    ),
                );
            }
        }
    }
}
