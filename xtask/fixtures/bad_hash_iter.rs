//! Fixture: unordered hash-table iteration in a deterministic-core path.

use std::collections::{HashMap, HashSet};

struct Sched {
    rank: HashMap<u64, u64>,
    // Lookup-only table: declared but never iterated — not flagged.
    cache: HashMap<u64, u64>,
}

impl Sched {
    fn recompute(&mut self) -> u64 {
        // Implicit IntoIterator over the map itself.
        for (t, r) in &self.rank {
            let _ = (t, r);
        }
        // Order-exposing accessor.
        let total: u64 = self.rank.values().sum();
        // Lookup-only use is fine.
        total + self.cache.get(&0).copied().unwrap_or(0)
    }
}

fn local_set(xs: &[u32]) -> u32 {
    let mut seen = HashSet::new();
    for &x in xs {
        seen.insert(x);
    }
    // Iterating the set, two ways.
    for v in seen.iter() {
        let _ = v;
    }
    let mut drained: HashSet<u32> = HashSet::new();
    drained.drain().sum()
}
