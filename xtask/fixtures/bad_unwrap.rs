//! Fixture: `unwrap`/`expect` outside test code.

fn maybe() -> Option<u32> {
    Some(1)
}

fn bad() -> u32 {
    let a = maybe().unwrap();
    let b = maybe().expect("boom");
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::maybe().unwrap(), 1);
    }
}
