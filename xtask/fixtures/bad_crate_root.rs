//! Fixture: a crate root missing both required lint attributes.

pub fn f() {}
