//! Fixture: debug and placeholder markers.

fn noisy(x: u32) -> u32 {
    // TODO: remove this before shipping
    dbg!(x)
}

// FIXME: this comment is also banned
