//! Fixture: a fully clean crate root — zero findings expected.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;

/// Adds one, carefully.
pub fn add_one(x: u64) -> u64 {
    x + 1
}

/// Deterministic iteration, checked indexing, and non-panicking
/// fallbacks — everything the semantic lints must leave alone.
pub fn deterministic(map: &BTreeMap<u64, u64>, bytes: &[u8], i: usize) -> u64 {
    let mut acc = 0;
    for (k, v) in map {
        acc += k + v;
    }
    let checked = bytes.get(i + 1).copied().unwrap_or_default();
    let eps = 1e-9_f64;
    let none: Option<u64> = None;
    acc + checked as u64 + none.unwrap_or(0) + eps as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn works() {
        let v: Option<u64> = Some(super::add_one(1));
        assert_eq!(v.unwrap(), 2);
    }
}
