//! Fixture: a fully clean crate root — zero findings expected.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Adds one, carefully.
pub fn add_one(x: u64) -> u64 {
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn works() {
        let v: Option<u64> = Some(super::add_one(1));
        assert_eq!(v.unwrap(), 2);
    }
}
