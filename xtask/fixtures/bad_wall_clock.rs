//! Fixture: wall-clock reads inside the deterministic core.

use std::time::{Duration, Instant};

fn latency() -> Duration {
    let start = Instant::now();
    start.elapsed()
}

fn timestamp() -> u64 {
    let t = std::time::SystemTime::now();
    let _ = t;
    0
}
