//! Fixture: slice-index arithmetic in a serve parser path.

fn bad_offset(bytes: &[u8], pos: usize) -> u8 {
    bytes[pos + 1]
}

fn bad_range(bytes: &[u8], pos: usize) -> &[u8] {
    &bytes[pos..pos + 4]
}

fn ok_checked(bytes: &[u8], pos: usize) -> Option<&u8> {
    // Arithmetic inside `.get(…)` is the sanctioned form — not flagged.
    bytes.get(pos + 1)
}

fn ok_plain(bytes: &[u8]) -> u8 {
    // Indexing without arithmetic stays allowed.
    bytes[0]
}
