//! Fixture: a banned cycle-domain `as` cast.

fn bad(x: u64) -> DramCycle {
    x as DramCycle
}

fn also_bad(x: u64) -> u64 {
    (x as CpuDelta).get()
}
