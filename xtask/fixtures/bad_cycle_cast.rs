//! Fixture: a banned cycle-domain `as` cast.

fn bad(x: u64) -> DramCycle {
    x as DramCycle
}

fn also_bad(x: u64) -> u64 {
    (x as CpuDelta).get()
}

fn sneaky_multiline(x: u64) -> DramDelta {
    // A line break after `as` dodged the old line-level rule.
    x as
        DramDelta
}
