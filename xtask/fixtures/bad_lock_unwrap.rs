//! Fixture: `lock().unwrap()` poisoning hazards in a serve path.

use std::sync::{Mutex, PoisonError};

fn bad_unwrap(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

fn bad_expect(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("not poisoned")
}

fn ok_recovers(m: &Mutex<u64>) -> u64 {
    // Poison recovery is the sanctioned pattern — not flagged.
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}
