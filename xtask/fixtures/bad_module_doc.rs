// A plain comment is not a module doc.

pub fn undocumented_module() {}
