//! # stfm-repro
//!
//! Umbrella crate for the reproduction of *Stall-Time Fair Memory Access
//! Scheduling for Chip Multiprocessors* (Mutlu & Moscibroda, MICRO 2007).
//!
//! It re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency:
//!
//! * [`dram`] — cycle-level DDR2 device/channel/timing model.
//! * [`mc`] — memory controller and baseline schedulers (FR-FCFS, FCFS,
//!   FR-FCFS+Cap, NFQ).
//! * [`stfm`] — the paper's contribution: the Stall-Time Fair Memory
//!   scheduler.
//! * [`cpu`] — trace-driven cores with L1/L2 caches and MSHRs.
//! * [`workloads`] — synthetic SPEC CPU2006 / desktop workload generators.
//! * [`sim`] — full-system simulator, metrics, and the experiment runner.
//! * [`telemetry`] — event model, trace sinks, and the epoch sampler.
//!
//! # Quickstart
//!
//! ```
//! use stfm_repro::sim::{Experiment, SchedulerKind};
//! use stfm_repro::workloads::spec;
//!
//! let result = Experiment::new(vec![spec::mcf(), spec::libquantum()])
//!     .scheduler(SchedulerKind::Stfm)
//!     .instructions_per_thread(20_000)
//!     .run();
//! println!("unfairness = {:.2}", result.unfairness());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use stfm_core as stfm;
pub use stfm_cpu as cpu;
pub use stfm_dram as dram;
pub use stfm_mc as mc;
pub use stfm_sim as sim;
pub use stfm_telemetry as telemetry;
pub use stfm_workloads as workloads;
